package vnet

import (
	"slices"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/radio"
)

// MsgCast is the message kind used inside casts.
const MsgCast = 0x20

// VNet is the cluster graph of a parent network, usable as an lbnet.Net.
type VNet struct {
	parent lbnet.Net
	cl     *cluster.Clustering
	g      *graph.Graph // cluster graph (reference topology)

	// Precomputed schedule data.
	membersAtLayer [][][]int32 // [cluster][layer] -> member vertices
	maxLayerOf     []int32     // [cluster] -> deepest member layer
	subsets        [][]int32   // [cluster] -> sorted subset slots
	hdrBits        uint        // bits pushed per wrap

	lbTime int64
	energy []int64 // per cluster, LB units at this level

	// castFailures counts w.h.p.-zero divergence events: a participating
	// member that missed a Downcast, or a center that missed an Upcast some
	// member sent into. Tests assert it stays zero under default parameters.
	castFailures int64

	// Scratch (parent-sized and cluster-sized). All of it is owned by the
	// VNet and reused across calls, so the steady-state cast and
	// LocalBroadcast paths allocate nothing.
	memberMsg   []radio.Msg
	memberHas   []bool
	phase2Got   []radio.Msg
	phase2Ok    []bool
	partScratch []bool
	slotBucket  [][]int32
	slotDepth   [][]int32
	slotUsed    []bool
	steps       []int32
	stageCap    []int32
	txScratch   []radio.TX
	rxScratch   []int32
	gotScratch  []radio.Msg
	okScratch   []bool
	active      []int32
	lbMsg       []radio.Msg // LocalBroadcast: per-cluster sender payloads
	lbHas       []bool
	lbGot       []radio.Msg // LocalBroadcast: per-cluster upcast results
	lbOk        []bool
	lbPartR     []bool

	// Persistent direction scratch: cast receives these by pointer so the
	// castDirection interface conversion never heap-allocates.
	down castDown
	up   castUp
}

// New builds the virtual network for clustering cl of the parent net.
func New(parent lbnet.Net, cl *cluster.Clustering) *VNet {
	pn := parent.N()
	nc := cl.NumClusters()
	v := &VNet{
		parent:     parent,
		cl:         cl,
		g:          cl.ClusterGraph(parent.Graph()),
		maxLayerOf: make([]int32, nc),
		subsets:    make([][]int32, nc),
		energy:     make([]int64, nc),

		memberMsg:   make([]radio.Msg, pn),
		memberHas:   make([]bool, pn),
		phase2Got:   make([]radio.Msg, pn),
		phase2Ok:    make([]bool, pn),
		partScratch: make([]bool, nc),
		slotBucket:  make([][]int32, cl.Cfg.SubsetLen),
		slotDepth:   make([][]int32, cl.Cfg.SubsetLen),
		slotUsed:    make([]bool, cl.Cfg.SubsetLen),
		stageCap:    make([]int32, cl.Cfg.SubsetLen),
		gotScratch:  make([]radio.Msg, pn),
		okScratch:   make([]bool, pn),
		lbMsg:       make([]radio.Msg, nc),
		lbHas:       make([]bool, nc),
		lbGot:       make([]radio.Msg, nc),
		lbOk:        make([]bool, nc),
		lbPartR:     make([]bool, nc),
	}
	v.membersAtLayer = make([][][]int32, nc)
	for c := 0; c < nc; c++ {
		v.subsets[c] = cl.Subset(int32(c))
	}
	for u := int32(0); u < int32(pn); u++ {
		c := cl.ClusterOf[u]
		l := cl.Layer[u]
		if l > v.maxLayerOf[c] {
			v.maxLayerOf[c] = l
		}
	}
	for c := 0; c < nc; c++ {
		v.membersAtLayer[c] = make([][]int32, v.maxLayerOf[c]+1)
	}
	for u := int32(0); u < int32(pn); u++ {
		c := cl.ClusterOf[u]
		l := cl.Layer[u]
		v.membersAtLayer[c][l] = append(v.membersAtLayer[c][l], u)
	}
	v.hdrBits = 1
	for 1<<v.hdrBits < nc+1 {
		v.hdrBits++
	}
	return v
}

// Clustering returns the clustering this level is built on.
func (v *VNet) Clustering() *cluster.Clustering { return v.cl }

// Parent returns the network this level is simulated on.
func (v *VNet) Parent() lbnet.Net { return v.parent }

// CastFailures returns the number of cast divergence events so far.
func (v *VNet) CastFailures() int64 { return v.castFailures }

// N implements lbnet.Net: the number of clusters.
func (v *VNet) N() int { return v.cl.NumClusters() }

// GlobalN implements lbnet.Net: the physical network size.
func (v *VNet) GlobalN() int { return v.parent.GlobalN() }

// Graph implements lbnet.Net: the cluster graph (analysis only).
func (v *VNet) Graph() *graph.Graph { return v.g }

// LBTime implements lbnet.Net.
func (v *VNet) LBTime() int64 { return v.lbTime }

// LBEnergy implements lbnet.Net.
func (v *VNet) LBEnergy(c int32) int64 { return v.energy[c] }

// CastLBs returns the fixed duration of one cast in parent LB units:
// TMax stages of SubsetLen steps.
func (v *VNet) CastLBs() int64 {
	return int64(v.cl.Cfg.TMax) * int64(v.cl.Cfg.SubsetLen)
}

// VLBCost returns the fixed duration of one virtual Local-Broadcast in
// parent LB units: three casts plus one parent Local-Broadcast.
func (v *VNet) VLBCost() int64 { return 3*v.CastLBs() + 1 }

// SkipLB implements lbnet.Net.
func (v *VNet) SkipLB(k int64) {
	if k < 0 {
		panic("vnet: negative skip")
	}
	v.lbTime += k
	v.parent.SkipLB(k * v.VLBCost())
}

// wrap pushes this level's cluster ID onto the transport header.
func (v *VNet) wrap(m radio.Msg, c int32) radio.Msg {
	m.Hdr = m.Hdr<<v.hdrBits | uint64(c+1)
	return m
}

// unwrap pops this level's cluster ID; ok is false for foreign messages.
func (v *VNet) unwrap(m radio.Msg, want int32) (radio.Msg, bool) {
	c := int64(m.Hdr&(1<<v.hdrBits-1)) - 1
	m.Hdr >>= v.hdrBits
	return m, c == int64(want)
}

// Downcast delivers clusterMsg[c] from the center of every participating
// cluster c (part[c] && has[c]) to all of c's members. Results land in
// memberGot/memberOk, indexed by parent vertex; entries of members of
// non-participating clusters are zeroed. Members of participating clusters
// without a message (has[c] false) still listen on schedule. The call always
// consumes CastLBs() parent LB units.
func (v *VNet) Downcast(part, has []bool, clusterMsg []radio.Msg, memberGot []radio.Msg, memberOk []bool) {
	v.down = castDown{v: v, has: has, clusterMsg: clusterMsg, memberGot: memberGot, memberOk: memberOk}
	v.cast(part, &v.down)
}

// Upcast delivers, for every participating cluster with at least one member
// holding a message (memberHas), one such message to the cluster center.
// Results land in clusterGot/clusterOk indexed by cluster. The call always
// consumes CastLBs() parent LB units.
func (v *VNet) Upcast(part []bool, memberHas []bool, memberMsg []radio.Msg, clusterGot []radio.Msg, clusterOk []bool) {
	v.up = castUp{v: v, memberHas: memberHas, memberMsg: memberMsg, clusterGot: clusterGot, clusterOk: clusterOk}
	v.cast(part, &v.up)
}

// castDirection abstracts the two cast directions over one schedule. Its
// methods are deliberately coarse — one call per cluster (collect) and one
// per executed slot (deliver) rather than one per member — so the member
// loops run devirtualized on direct field accesses; with per-member
// interface dispatch the cast loop was measurably dominated by call
// overhead.
type castDirection interface {
	// stages returns the stage indices in execution order.
	stageSeq(maxStage int32) (from, to, step int32)
	// senderLayer maps a stage to the layer that transmits in it.
	senderLayer(stage int32) int32
	// recvLayer maps a stage to the layer that listens in it.
	recvLayer(stage int32) int32
	// init prepares per-member state before the stages run.
	init()
	// collect appends, for every cluster in the slot bucket, the stage's
	// transmissions (members at sLayer holding a message) to v.txScratch
	// and its listeners (members at rLayer without one) to v.rxScratch.
	// depths carries maxLayerOf per bucket entry so out-of-range clusters
	// are skipped on one compare.
	collect(bucket, depths []int32, sLayer, rLayer int32)
	// deliver records the results of one executed slot: got/ok are indexed
	// like v.rxScratch, and foreign-cluster messages are filtered by the
	// transport header.
	deliver(got []radio.Msg, ok []bool)
	// finish runs after the stages to tally failures.
	finish(part []bool)
}

type castDown struct {
	v          *VNet
	has        []bool
	clusterMsg []radio.Msg
	memberGot  []radio.Msg
	memberOk   []bool
}

func (d *castDown) stageSeq(maxStage int32) (int32, int32, int32) { return 1, maxStage, 1 }
func (d *castDown) senderLayer(stage int32) int32                 { return stage - 1 }
func (d *castDown) recvLayer(stage int32) int32                   { return stage }

func (d *castDown) init() {
	for i := range d.memberGot {
		d.memberGot[i], d.memberOk[i] = radio.Msg{}, false
	}
	for c, center := range d.v.cl.Center {
		if d.has != nil && !d.has[c] {
			continue
		}
		d.memberGot[center] = d.clusterMsg[c]
		d.memberOk[center] = true
	}
}

func (d *castDown) collect(bucket, depths []int32, sLayer, rLayer int32) {
	v := d.v
	memberOk, memberGot := d.memberOk, d.memberGot
	membersAtLayer := v.membersAtLayer
	hdrBits := v.hdrBits
	tx, rx := v.txScratch, v.rxScratch
	for k, c := range bucket {
		maxL := depths[k]
		if sLayer > maxL && rLayer > maxL {
			continue
		}
		ml := membersAtLayer[c]
		if sLayer >= 0 && sLayer <= maxL {
			for _, u := range ml[sLayer] {
				if memberOk[u] {
					tx = append(tx, radio.TX{ID: u, Msg: memberGot[u]})
					m := &tx[len(tx)-1].Msg
					m.Hdr = m.Hdr<<hdrBits | uint64(c+1)
				}
			}
		}
		if rLayer >= 0 && rLayer <= maxL {
			for _, u := range ml[rLayer] {
				if !memberOk[u] {
					rx = append(rx, u)
				}
			}
		}
	}
	v.txScratch, v.rxScratch = tx, rx
}

func (d *castDown) deliver(got []radio.Msg, ok []bool) {
	v := d.v
	for i, u := range v.rxScratch {
		if !ok[i] {
			continue
		}
		if m, mine := v.unwrap(got[i], v.cl.ClusterOf[u]); mine {
			d.memberGot[u] = m
			d.memberOk[u] = true
		}
	}
}

func (d *castDown) finish(part []bool) {
	// A member of a participating cluster whose center had a message but
	// who didn't receive it is a divergence event.
	for c := range part {
		if !part[c] || (d.has != nil && !d.has[c]) {
			continue
		}
		for _, layerMembers := range d.v.membersAtLayer[c] {
			for _, u := range layerMembers {
				if !d.memberOk[u] {
					d.v.castFailures++
				}
			}
		}
	}
}

type castUp struct {
	v          *VNet
	memberHas  []bool
	memberMsg  []radio.Msg
	clusterGot []radio.Msg
	clusterOk  []bool
}

func (u *castUp) stageSeq(maxStage int32) (int32, int32, int32) { return maxStage, 1, -1 }
func (u *castUp) senderLayer(stage int32) int32                 { return stage }
func (u *castUp) recvLayer(stage int32) int32                   { return stage - 1 }

func (u *castUp) init() {
	v := u.v
	copy(v.memberMsg, u.memberMsg)
	copy(v.memberHas, u.memberHas)
	for c := range u.clusterGot {
		u.clusterGot[c], u.clusterOk[c] = radio.Msg{}, false
	}
}

func (u *castUp) collect(bucket, depths []int32, sLayer, rLayer int32) {
	v := u.v
	memberHas, memberMsg := v.memberHas, v.memberMsg
	membersAtLayer := v.membersAtLayer
	hdrBits := v.hdrBits
	tx, rx := v.txScratch, v.rxScratch
	for k, c := range bucket {
		maxL := depths[k]
		if sLayer > maxL && rLayer > maxL {
			continue
		}
		ml := membersAtLayer[c]
		if sLayer >= 0 && sLayer <= maxL {
			for _, m := range ml[sLayer] {
				if memberHas[m] {
					tx = append(tx, radio.TX{ID: m, Msg: memberMsg[m]})
					w := &tx[len(tx)-1].Msg
					w.Hdr = w.Hdr<<hdrBits | uint64(c+1)
				}
			}
		}
		if rLayer >= 0 && rLayer <= maxL {
			for _, m := range ml[rLayer] {
				if !memberHas[m] {
					rx = append(rx, m)
				}
			}
		}
	}
	v.txScratch, v.rxScratch = tx, rx
}

func (u *castUp) deliver(got []radio.Msg, ok []bool) {
	v := u.v
	for i, m := range v.rxScratch {
		if !ok[i] {
			continue
		}
		if msg, mine := v.unwrap(got[i], v.cl.ClusterOf[m]); mine {
			v.memberMsg[m] = msg
			v.memberHas[m] = true
		}
	}
}

func (u *castUp) finish(part []bool) {
	v := u.v
	for c := range part {
		if !part[c] {
			continue
		}
		center := v.cl.Center[c]
		if v.memberHas[center] {
			u.clusterGot[c] = v.memberMsg[center]
			u.clusterOk[c] = true
			continue
		}
		// If any member held a message and the center never got it, the
		// Upcast diverged.
	scan:
		for _, layerMembers := range v.membersAtLayer[c] {
			for _, m := range layerMembers {
				if u.memberHas[m] {
					v.castFailures++
					break scan
				}
			}
		}
	}
}

// cast runs the shared stage/step schedule of Lemma 3.1 for either
// direction. It always consumes exactly CastLBs() parent LB units.
func (v *VNet) cast(part []bool, dir castDirection) {
	cfg := v.cl.Cfg
	dir.init()
	executed := int64(0)

	// Active clusters: the participating list, bucketed by subset slot ONCE
	// for the whole cast. The schedule (which slots exist and which clusters
	// share them) is stage-invariant; only the sender/receiver layers change
	// per stage, and the member loops below already guard on them, so a
	// cluster whose layers are out of range for a stage simply contributes
	// nothing to that stage's slot. Slots in which nothing happens are
	// skipped without a parent call, exactly as before.
	//
	// Cluster c is relevant to stage s iff s ≤ maxLayerOf[c]+1 (in both
	// directions min(senderLayer, recvLayer) = s-1), so relevance is a
	// prefix property in the stage number: maxStage clamps the whole loop
	// to the deepest cluster and stageCap[j] skips a slot once every
	// cluster sharing it is out of range. Stages and slots skipped this way
	// executed no parent call before either, so the trailing SkipLB —
	// which charges CastLBs() minus the executed count — is unchanged.
	v.active = v.active[:0]
	for c := int32(0); c < int32(v.N()); c++ {
		if part[c] {
			v.active = append(v.active, c)
		}
	}
	v.steps = v.steps[:0]
	maxStage := int32(0)
	for _, c := range v.active {
		depth := v.maxLayerOf[c] + 1
		if depth > maxStage {
			maxStage = depth
		}
		for _, j := range v.subsets[c] {
			if !v.slotUsed[j] {
				v.slotUsed[j] = true
				v.steps = append(v.steps, j)
			}
			v.slotBucket[j] = append(v.slotBucket[j], c)
			v.slotDepth[j] = append(v.slotDepth[j], v.maxLayerOf[c])
			if depth > v.stageCap[j] {
				v.stageCap[j] = depth
			}
		}
	}
	slices.Sort(v.steps)
	if maxStage > int32(cfg.TMax) {
		maxStage = int32(cfg.TMax)
	}
	from, to, stepDir := dir.stageSeq(maxStage)
	for stage := from; ; stage += stepDir {
		if (stepDir > 0 && stage > to) || (stepDir < 0 && stage < to) {
			break
		}
		sLayer, rLayer := dir.senderLayer(stage), dir.recvLayer(stage)
		for _, j := range v.steps {
			if stage > v.stageCap[j] {
				continue
			}
			v.txScratch = v.txScratch[:0]
			v.rxScratch = v.rxScratch[:0]
			dir.collect(v.slotBucket[j], v.slotDepth[j], sLayer, rLayer)
			if len(v.txScratch) == 0 && len(v.rxScratch) == 0 {
				continue // schedule slot with nothing to do; skipped below
			}
			got := v.gotScratch[:len(v.rxScratch)]
			ok := v.okScratch[:len(v.rxScratch)]
			v.parent.LocalBroadcast(v.txScratch, v.rxScratch, got, ok)
			executed++
			// Delivery filters by transport header: foreign clusters'
			// messages in the same slot are discarded (the receiver retries
			// in its next subset slot).
			dir.deliver(got, ok)
		}
	}
	for _, j := range v.steps {
		v.slotUsed[j] = false
		v.slotBucket[j] = v.slotBucket[j][:0]
		v.slotDepth[j] = v.slotDepth[j][:0]
		v.stageCap[j] = 0
	}
	if skip := v.CastLBs() - executed; skip > 0 {
		v.parent.SkipLB(skip)
	}
	dir.finish(part)
}

// LocalBroadcast implements lbnet.Net on the cluster graph (Lemma 3.2):
// sending clusters' messages reach, w.h.p., every receiving cluster adjacent
// to a sender in G*. The result is also downcast to every member of each
// receiving cluster, keeping replicated cluster state consistent.
func (v *VNet) LocalBroadcast(senders []radio.TX, receivers []int32, got []radio.Msg, ok []bool) {
	if len(got) != len(receivers) || len(ok) != len(receivers) {
		panic("vnet: result slices must match receivers length")
	}
	partS := v.partScratch
	clusterMsg, hasMsg := v.lbMsg, v.lbHas
	for i := range senders {
		partS[senders[i].ID] = true
		hasMsg[senders[i].ID] = true
		clusterMsg[senders[i].ID] = senders[i].Msg
	}
	// Phase 1: Downcast sender payloads to sender-cluster members.
	v.Downcast(partS, hasMsg, clusterMsg, v.memberMsg, v.memberHas)

	// Phase 2: one parent Local-Broadcast from all sender-cluster members to
	// all receiver-cluster members. Participant lists are built from member
	// lists so the cost stays proportional to participation. The payloads in
	// v.memberMsg/v.memberHas are stable here: nothing mutates them between
	// the phase-1 Downcast and this TX build.
	v.txScratch = v.txScratch[:0]
	for i := range senders {
		for _, layerMembers := range v.membersAtLayer[senders[i].ID] {
			for _, u := range layerMembers {
				if v.memberHas[u] {
					v.txScratch = append(v.txScratch, radio.TX{ID: u, Msg: v.memberMsg[u]})
				}
			}
		}
	}
	partR := v.lbPartR
	v.rxScratch = v.rxScratch[:0]
	for _, c := range receivers {
		if partS[c] {
			panic("vnet: cluster is both sender and receiver")
		}
		partR[c] = true
		for _, layerMembers := range v.membersAtLayer[c] {
			v.rxScratch = append(v.rxScratch, layerMembers...)
		}
	}
	got2 := v.gotScratch[:len(v.rxScratch)]
	ok2 := v.okScratch[:len(v.rxScratch)]
	v.parent.LocalBroadcast(v.txScratch, v.rxScratch, got2, ok2)
	for i, u := range v.rxScratch {
		v.phase2Got[u], v.phase2Ok[u] = got2[i], ok2[i]
	}

	// Phase 3: Upcast one received message per receiving cluster.
	clusterGot, clusterOk := v.lbGot, v.lbOk
	v.Upcast(partR, v.phase2Ok, v.phase2Got, clusterGot, clusterOk)

	// Phase 4: Downcast the result so every member learns it.
	v.Downcast(partR, clusterOk, clusterGot, v.memberMsg, v.memberHas)

	for i, c := range receivers {
		got[i], ok[i] = clusterGot[c], clusterOk[c]
	}
	// Clear the participant scratch sparsely — only the entries this call
	// set — so the next call starts clean at cost proportional to
	// participation, not cluster count.
	for i := range senders {
		c := senders[i].ID
		partS[c], hasMsg[c] = false, false
		clusterMsg[c] = radio.Msg{}
	}
	for _, c := range receivers {
		partR[c] = false
	}
	// Meters: every sender or receiver cluster participated in one virtual LB.
	for i := range senders {
		v.energy[senders[i].ID]++
	}
	for _, c := range receivers {
		v.energy[c]++
	}
	v.lbTime++
}
