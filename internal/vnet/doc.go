// Package vnet simulates the cluster graph G* = cluster(G, β) as a radio
// network in its own right, implementing the paper's §3. Virtual vertices
// are clusters; the communication primitives are:
//
//   - Downcast (Lemma 3.1): cluster centers disseminate a message to all
//     members, layer by layer, using the shared-subset collision-avoidance
//     schedule — stage i, step j has the layer-(i-1) members of clusters
//     with j ∈ S_C send to the layer-i members of those clusters.
//   - Upcast (Lemma 3.1): the reverse — the center learns one message held
//     by some member.
//   - LocalBroadcast (Lemma 3.2): one Local-Broadcast on G*, implemented as
//     Downcast + one parent-level Local-Broadcast + Upcast, plus a final
//     result Downcast so that every member learns what its cluster received
//     (a constant-factor deviation recorded in DESIGN.md that keeps the
//     replicated per-cluster state of Invariant 4.1 consistent).
//
// A VNet implements lbnet.Net, so clustering and Recursive-BFS run on it
// unchanged — including building a further VNet on top of it, which is the
// recursion of §4. Every operation has a fixed duration in parent LB units,
// determined only by the clustering parameters, so non-participating
// clusters sleep through it at zero energy.
//
// Allocation contract: the cast slot schedule is built once per cast and
// clamped to the deepest relevant stage, per-call buffers live in VNet
// scratch, and cast directions pass by pointer — Downcast, Upcast, and
// LocalBroadcast run at 0 allocs/op once warm (pinned by AllocsPerRun
// tests). Cast randomness derives from the seed the VNet was built with,
// preserving the trial-level determinism contract.
package vnet
