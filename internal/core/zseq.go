// Package core implements the paper's main contribution (§4): the
// Recursive-BFS algorithm, which computes a breadth-first labeling of a
// radio network with sub-polynomial energy 2^O(√(log D log log n)) by
// recursively running BFS on Miller–Peng–Xu cluster graphs to maintain,
// at every vertex, lower and upper bounds on its cluster's distance to the
// advancing wavefront — so that vertices sleep through the stages that
// cannot affect them.
package core

// Y returns the largest power of two dividing i (Y[i] of §4.1); i must be
// positive. Y = (1, 2, 1, 4, 1, 2, 1, 8, ...).
func Y(i int) int {
	if i <= 0 {
		panic("core: Y is defined for positive indices")
	}
	return i & (-i)
}

// ZSeq is the Z-sequence guiding Special Updates (§4.1):
//
//	Z[0] = D*, Z[i] = min{D*, α·Y[i]} for i >= 1,
//
// where D* is the smallest α·2^j that is at least the required top search
// radius. Lemma 4.2's periodicity properties are tested exhaustively.
type ZSeq struct {
	// Alpha is the paper's α = 4.
	Alpha int
	// DStar is Z[0], the radius of the initializing recursive call.
	DStar int
}

// NewZSeq builds the Z-sequence for a required radius of at least minD.
func NewZSeq(alpha, minD int) ZSeq {
	if alpha < 1 {
		panic("core: alpha must be positive")
	}
	d := alpha
	for d < minD {
		d *= 2
	}
	return ZSeq{Alpha: alpha, DStar: d}
}

// At returns Z[i].
func (z ZSeq) At(i int) int {
	if i == 0 {
		return z.DStar
	}
	v := z.Alpha * Y(i)
	if v > z.DStar {
		return z.DStar
	}
	return v
}

// NextAtLeast returns the smallest index j > i with Z[j] >= b (Lemma 4.2
// part 1), used by tests and the Claim 1/2 analysis.
func (z ZSeq) NextAtLeast(i, b int) int {
	for j := i + 1; ; j++ {
		if z.At(j) >= b {
			return j
		}
	}
}
