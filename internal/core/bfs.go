package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/progress"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/vnet"
)

// Progress phase names emitted through Stack.Hooks.
const (
	// PhaseRecursive frames one Stack.BFS invocation; its round batches are
	// the β⁻¹-Local-Broadcast stages of Figure 2.
	PhaseRecursive = "recursive-bfs"
	// PhaseTrivial is the base-case wavefront BFS of §4.3.
	PhaseTrivial = "recursive-bfs/trivial"
)

// Message kinds used by Recursive-BFS.
const (
	// MsgWave advances the BFS wavefront; A carries the sender's label.
	MsgWave = 0x30
	// MsgDist disseminates a Special Update result; A carries dist*+1 (0 = ∞).
	MsgDist = 0x31
	// MsgFlag aggregates the W*/A* cluster flags; A carries a bitmask.
	MsgFlag = 0x32
)

// infBound is the ∞ sentinel for the L/U distance estimates.
const infBound = int64(1) << 60

// Unreached marks vertices whose distance exceeds the search radius.
const Unreached = int32(-1)

// Stack is the prebuilt tower of cluster graphs over a base network. Per §4,
// the cluster graph of each level is computed once and reused by every
// recursive invocation at that level.
type Stack struct {
	P    Params
	Base lbnet.Net
	// VNets[r] is the cluster graph of level r (so the Net of level r+1).
	VNets []*vnet.VNet
	// Inst collects instrumentation; nil disables it.
	Inst *Instrumentation
	// Hooks carries cancellation and progress observation through the round
	// loops: every stage boundary polls Hooks.Err and, when canceled, BFS
	// returns its partial labels without starting another phase (meters stay
	// consistent because accounting happens per Local-Broadcast). The zero
	// value disables both.
	Hooks progress.Hooks

	seed uint64
}

// BuildStack clusters the base network Depth times, paying the construction
// energy of Lemma 2.5 at each level, and returns the reusable stack.
func BuildStack(base lbnet.Net, p Params, seed uint64) (*Stack, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Stack{P: p, Base: base, seed: seed}
	cur := lbnet.Net(base)
	for r := 0; r < p.Depth; r++ {
		cfg := cluster.DefaultConfig(base.GlobalN(), p.InvBeta)
		cl := cluster.Build(cur, cfg, rng.Derive(seed, uint64(r), 0x57ac))
		vn := vnet.New(cur, cl)
		s.VNets = append(s.VNets, vn)
		cur = vn
	}
	return s, nil
}

// Level returns the Net of recursion level r (0 = base).
func (s *Stack) Level(r int) lbnet.Net {
	if r == 0 {
		return s.Base
	}
	return s.VNets[r-1]
}

// CastFailures sums the cast divergence counters across all levels.
func (s *Stack) CastFailures() int64 {
	var t int64
	for _, vn := range s.VNets {
		t += vn.CastFailures()
	}
	return t
}

// BFS computes, for every vertex of the base network, its hop distance from
// the source set, or Unreached if it exceeds d. Sources must be non-empty.
// When the stack's Hooks context is canceled mid-run, the search stops at the
// next phase boundary and the labels assigned so far are returned; check
// s.Hooks.Err to distinguish a complete run from a canceled one.
func (s *Stack) BFS(sources []int32, d int) []int32 {
	s.Hooks.Start(PhaseRecursive)
	defer s.Hooks.End(PhaseRecursive)
	n := s.Base.N()
	S := make([]bool, n)
	for _, v := range sources {
		S[v] = true
	}
	A := make([]bool, n)
	for v := range A {
		A[v] = true
	}
	return s.recBFS(0, S, A, d)
}

// recBFS is Recursive-BFS(G, S, A, D) of Figure 2 at recursion level r.
// It returns dist_A(S, ·) capped at d (Unreached beyond). Vertices outside
// A expend no energy and return Unreached.
func (s *Stack) recBFS(r int, S, A []bool, d int) []int32 {
	net := s.Level(r)
	if r == s.P.Depth {
		return s.trivialBFS(r, net, S, A, d)
	}
	n := net.N()
	vn := s.VNets[r]
	clusterOf := vn.Clustering().ClusterOf
	nc := vn.N()
	invB := int64(s.P.InvBeta)
	w := int64(s.P.W)

	dist := make([]int32, n)
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		dist[v] = Unreached
		active[v] = A[v]
		if S[v] && A[v] {
			dist[v] = 0
		}
	}

	z := NewZSeq(s.P.Alpha, int(ceilDiv(w*int64(d), invB)))
	L := make([]int64, nc)
	U := make([]int64, nc)

	// --- Step 1: initialize distance estimates via a recursive call on the
	// whole active cluster graph, searched to radius D* = Z[0].
	partAll := make([]bool, nc)
	for c := range partAll {
		partAll[c] = true
	}
	inS, inA := s.aggregateFlags(r, partAll,
		func(v int32) bool { return S[v] && active[v] },
		func(v int32) bool { return active[v] })
	distStar := s.recBFS(r+1, inS, inA, z.DStar)
	s.disseminateDist(r, partAll, distStar)
	for c := 0; c < nc; c++ {
		if distStar[c] < 0 {
			L[c], U[c] = infBound, infBound
			continue
		}
		x := int64(distStar[c])
		L[c] = x * invB / w
		U[c] = maxI64(w*invB, x*invB*w)
	}
	// Step 2: deactivate vertices in unreached clusters.
	for v := 0; v < n; v++ {
		if active[v] && L[clusterOf[v]] >= infBound {
			active[v] = false
		}
	}

	var (
		senders   []radio.TX
		receivers []int32
		got       = make([]radio.Msg, n)
		ok        = make([]bool, n)
	)
	stages := ceilDiv(int64(d), invB)
	for i := int64(0); i < stages; i++ {
		if s.Hooks.Err() != nil {
			return dist // canceled: partial labels, meters settled
		}
		// Step 4: X_i = active vertices whose cluster might be near the
		// wavefront.
		inX := func(v int32) bool { return L[clusterOf[v]] <= invB }
		if s.Inst != nil {
			s.Inst.observeStage(r, i, s, active, dist, L, U, z, clusterOf, invB)
		}
		// Step 5: advance the wavefront by β⁻¹ Local-Broadcasts.
		for k := int64(1); k <= invB; k++ {
			target := i*invB + k - 1
			senders, receivers = senders[:0], receivers[:0]
			for v := int32(0); v < int32(n); v++ {
				if !active[v] {
					continue
				}
				if int64(dist[v]) == target && target+1 <= int64(d) && dist[v] >= 0 {
					if !inX(v) {
						// The invariant promises this cannot happen; count it
						// and honor the protocol (non-X_i vertices sleep).
						if s.Inst != nil {
							s.Inst.SenderViolations++
						}
						continue
					}
					senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: MsgWave, A: uint64(target)}})
				} else if dist[v] == Unreached && inX(v) {
					receivers = append(receivers, v)
				}
			}
			if len(senders) == 0 && len(receivers) == 0 {
				net.SkipLB(1)
				continue
			}
			net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
			for j, v := range receivers {
				if ok[j] && got[j].Kind == MsgWave {
					dist[v] = int32(target + 1)
				}
			}
		}
		// Step 6: deactivate settled vertices.
		for v := 0; v < n; v++ {
			if active[v] && dist[v] != Unreached && int64(dist[v]) < (i+1)*invB {
				active[v] = false
			}
		}
		// Step 7: Special Update on Υ = {C ∈ A* : L_i(C) <= (Z[i+1]+1)·β⁻¹}.
		zNext := int64(z.At(int(i + 1)))
		cand := make([]bool, nc)
		for c := 0; c < nc; c++ {
			cand[c] = L[c] < infBound && L[c] <= (zNext+1)*invB
		}
		front := (i + 1) * invB
		inW, inAct := s.aggregateFlags(r, cand,
			func(v int32) bool { return int64(dist[v]) == front && dist[v] >= 0 },
			func(v int32) bool { return active[v] })
		ups := make([]bool, nc)
		srcs := make([]bool, nc)
		for c := 0; c < nc; c++ {
			ups[c] = cand[c] && inAct[c]
			srcs[c] = ups[c] && inW[c]
		}
		distStar := s.recBFS(r+1, srcs, ups, int(zNext))
		s.disseminateDist(r, ups, distStar)
		for c := 0; c < nc; c++ {
			switch {
			case ups[c]:
				if s.Inst != nil {
					s.Inst.countSpecial(r, c)
				}
				newU := U[c] - invB
				var newL int64
				if distStar[c] < 0 {
					newL = zNext*invB + 1
				} else {
					x := int64(distStar[c])
					newL = minI64(zNext*invB+1, x*invB/w)
					newU = minI64(newU, maxI64(x, 1)*invB*w)
				}
				L[c], U[c] = newL, newU
			case L[c] < infBound:
				// Step 8: Automatic Update (free, purely local).
				L[c] -= invB
				U[c] -= invB
			}
		}
		s.Hooks.Rounds(PhaseRecursive, invB)
	}
	return dist
}

// trivialBFS settles all distances up to d with d Local-Broadcasts (§4.3's
// base case): unlabeled active vertices listen in every call, so each spends
// Θ(d) energy — which is why the recursion only invokes it on small radii.
func (s *Stack) trivialBFS(r int, net lbnet.Net, S, A []bool, d int) []int32 {
	n := net.N()
	dist := make([]int32, n)
	var senders []radio.TX
	var receivers []int32
	for v := 0; v < n; v++ {
		dist[v] = Unreached
		if S[v] && A[v] {
			dist[v] = 0
		}
	}
	got := make([]radio.Msg, n)
	ok := make([]bool, n)
	for k := int32(1); int(k) <= d; k++ {
		if s.Hooks.Err() != nil {
			break // canceled: partial labels, meters settled
		}
		s.Hooks.Rounds(PhaseTrivial, 1)
		senders, receivers = senders[:0], receivers[:0]
		for v := int32(0); v < int32(n); v++ {
			if !A[v] {
				continue
			}
			switch {
			case dist[v] == k-1:
				senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: MsgWave, A: uint64(k - 1)}})
			case dist[v] == Unreached:
				receivers = append(receivers, v)
			}
		}
		if len(receivers) == 0 {
			// Nobody is listening: the remaining calls are silent for all.
			net.SkipLB(int64(d) - int64(k) + 1)
			break
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		for j, v := range receivers {
			if ok[j] && got[j].Kind == MsgWave {
				dist[v] = k
			}
		}
	}
	if s.Inst != nil {
		s.Inst.TrivialCalls[r]++
	}
	return dist
}

// aggregateFlags computes, for every participating cluster of level r, the
// OR over members of two per-vertex predicates — via two Upcasts — and
// downcasts the combined result so members share it (one Downcast). This is
// how W*_{i+1} and A* reach the vertices that need them (Invariant 4.1's
// "each vertex u knows").
func (s *Stack) aggregateFlags(r int, part []bool, bit1, bit2 func(int32) bool) (f1, f2 []bool) {
	vn := s.VNets[r]
	pn := s.Level(r).N()
	clusterOf := vn.Clustering().ClusterOf
	nc := vn.N()
	memberHas := make([]bool, pn)
	memberMsg := make([]radio.Msg, pn)
	clusterGot := make([]radio.Msg, nc)
	f1 = make([]bool, nc)
	f2 = make([]bool, nc)
	for pass := 0; pass < 2; pass++ {
		bit := bit1
		out := f1
		if pass == 1 {
			bit = bit2
			out = f2
		}
		for v := int32(0); v < int32(pn); v++ {
			memberHas[v] = part[clusterOf[v]] && bit(v)
			memberMsg[v] = radio.Msg{Kind: MsgFlag, A: 1}
		}
		vn.Upcast(part, memberHas, memberMsg, clusterGot, out)
	}
	// Downcast the combined flags to the members.
	msgs := make([]radio.Msg, nc)
	has := make([]bool, nc)
	for c := 0; c < nc; c++ {
		if part[c] {
			has[c] = true
			var bits uint64
			if f1[c] {
				bits |= 1
			}
			if f2[c] {
				bits |= 2
			}
			msgs[c] = radio.Msg{Kind: MsgFlag, A: bits}
		}
	}
	vn.Downcast(part, has, msgs, memberMsg, memberHas)
	return f1, f2
}

// disseminateDist downcasts each participating cluster's Special Update
// result so all members can apply the same L/U update (the replicated state
// of Invariant 4.1). Divergence is counted by the vnet cast-failure meter.
func (s *Stack) disseminateDist(r int, part []bool, distStar []int32) {
	vn := s.VNets[r]
	pn := s.Level(r).N()
	nc := vn.N()
	msgs := make([]radio.Msg, nc)
	has := make([]bool, nc)
	for c := 0; c < nc; c++ {
		if part[c] {
			has[c] = true
			msgs[c] = radio.Msg{Kind: MsgDist, A: uint64(int64(distStar[c]) + 1)}
		}
	}
	memberGot := make([]radio.Msg, pn)
	memberOk := make([]bool, pn)
	vn.Downcast(part, has, msgs, memberGot, memberOk)
}

// VerifyAgainstReference compares labels against a sequential BFS and
// returns the number of mismatches (labels capped at d).
func VerifyAgainstReference(g *graph.Graph, sources []int32, dist []int32, d int) int {
	ref := graph.MultiSourceBFS(g, sources)
	bad := 0
	for v := range ref {
		want := ref[v]
		if want == graph.Unreachable || int(want) > d {
			want = Unreached
		}
		if dist[v] != want {
			bad++
		}
	}
	return bad
}

// BFSAuto runs the doubling driver of §4.3: BFS with D₀ = 1, 2, 4, ...
// until every vertex is labeled, rebuilding the parameter set and cluster
// stack per guess (β depends on D₀). Meters on base accumulate the honest
// total cost. It returns the labels and the last stack used.
func BFSAuto(base lbnet.Net, sources []int32, seed uint64) ([]int32, *Stack, error) {
	n := base.N()
	for d0 := 1; ; d0 *= 2 {
		p := DefaultParams(base.GlobalN(), d0)
		st, err := BuildStack(base, p, rng.Derive(seed, uint64(d0)))
		if err != nil {
			return nil, nil, err
		}
		dist := st.BFS(sources, d0)
		done := true
		for _, dd := range dist {
			if dd == Unreached {
				done = false
				break
			}
		}
		if done || d0 >= 2*n {
			return dist, st, nil
		}
	}
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic(fmt.Sprintf("core: ceilDiv by %d", b))
	}
	return (a + b - 1) / b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
