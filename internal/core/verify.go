package core

import (
	"repro/internal/lbnet"
	"repro/internal/radio"
)

// MsgVerify is the message kind of the label-verification sweeps.
const MsgVerify = 0x38

// VerifyGradientResult reports the outcome of a distributed labeling check.
type VerifyGradientResult struct {
	// Violations counts vertices that detected an inconsistency.
	Violations int
	// LBCalls is the number of Local-Broadcasts used.
	LBCalls int64
}

// VerifyGradient checks, with O(1) Local-Broadcasts of energy per vertex
// (the paper's §1 remark that a candidate labeling can be verified
// cheaply), that the labeling is a valid gradient: every vertex with label
// k > 0 has a neighbor labeled k-1, and the heard label is exactly k-1.
// This is the property the labelcast application needs — a gradient
// labeling routes messages to the source along decreasing labels.
//
// A gradient labeling certifies dist(u) <= label(u). Certifying the reverse
// inequality (no "shortcut" edges anywhere) inherently requires listening
// across all smaller labels; see VerifyExact, which spends O(D) energy.
// maxLabel bounds the sweep length; labels Unreached are ignored.
func VerifyGradient(net lbnet.Net, labels []int32, maxLabel int) VerifyGradientResult {
	n := net.N()
	var res VerifyGradientResult
	var senders []radio.TX
	var receivers []int32
	got := make([]radio.Msg, n)
	ok := make([]bool, n)
	for k := int32(1); int(k) <= maxLabel; k++ {
		senders, receivers = senders[:0], receivers[:0]
		for v := int32(0); v < int32(n); v++ {
			switch labels[v] {
			case k - 1:
				senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: MsgVerify, A: uint64(k - 1)}})
			case k:
				receivers = append(receivers, v)
			}
		}
		if len(senders) == 0 && len(receivers) == 0 {
			net.SkipLB(1)
			continue
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		res.LBCalls++
		for j := range receivers {
			if !ok[j] || got[j].Kind != MsgVerify || got[j].A != uint64(k-1) {
				res.Violations++
			}
		}
	}
	return res
}

// VerifyExact additionally detects shortcut edges — neighbors whose labels
// differ by two or more — by having every vertex listen through all sweep
// rounds below its own label. Together with VerifyGradient this certifies
// label(u) == dist(u) for all u, at Θ(D) energy per vertex (the unavoidable
// cost of ruling out edges to much-closer vertices; see DESIGN.md).
func VerifyExact(net lbnet.Net, labels []int32, maxLabel int) VerifyGradientResult {
	res := VerifyGradient(net, labels, maxLabel)
	n := net.N()
	var senders []radio.TX
	var receivers []int32
	got := make([]radio.Msg, n)
	ok := make([]bool, n)
	for k := int32(0); int(k) <= maxLabel-2; k++ {
		senders, receivers = senders[:0], receivers[:0]
		for v := int32(0); v < int32(n); v++ {
			switch {
			case labels[v] == k:
				senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: MsgVerify, A: uint64(k)}})
			case labels[v] >= k+2:
				receivers = append(receivers, v)
			}
		}
		if len(senders) == 0 || len(receivers) == 0 {
			net.SkipLB(1)
			continue
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		res.LBCalls++
		for j := range receivers {
			// Hearing anything in a round below label-1 exposes a shortcut.
			if ok[j] {
				res.Violations++
			}
		}
	}
	return res
}
