package core

import (
	"testing"
	"testing/quick"
)

func TestYSequence(t *testing.T) {
	want := []int{1, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2, 1, 16, 1, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2, 1, 32}
	for i, w := range want {
		if got := Y(i + 1); got != w {
			t.Fatalf("Y[%d] = %d, want %d", i+1, got, w)
		}
	}
}

func TestYPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Y(0)
}

func TestYDividesAndIsMaximal(t *testing.T) {
	check := func(raw uint16) bool {
		i := int(raw%10000) + 1
		y := Y(i)
		return i%y == 0 && (i/y)%2 == 1 // y | i and i/y odd ⇒ y is maximal
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZSeqDefinition(t *testing.T) {
	z := NewZSeq(4, 50) // D* = min 4·2^j >= 50 = 64
	if z.DStar != 64 {
		t.Fatalf("DStar = %d, want 64", z.DStar)
	}
	if z.At(0) != 64 {
		t.Fatalf("Z[0] = %d", z.At(0))
	}
	want := []int{4, 8, 4, 16, 4, 8, 4, 32, 4, 8, 4, 16, 4, 8, 4, 64, 4, 8, 4, 16}
	for i, w := range want {
		if got := z.At(i + 1); got != w {
			t.Fatalf("Z[%d] = %d, want %d", i+1, got, w)
		}
	}
	// Truncation at D*: Z[32] would be 4·32=128 > 64.
	if z.At(32) != 64 {
		t.Fatalf("Z[32] = %d, want truncated 64", z.At(32))
	}
}

func TestZSeqMinimumRadius(t *testing.T) {
	for _, minD := range []int{1, 3, 4, 5, 63, 64, 65, 1000} {
		z := NewZSeq(4, minD)
		if z.DStar < minD || z.DStar < 4 {
			t.Fatalf("DStar(%d) = %d too small", minD, z.DStar)
		}
		if z.DStar > 2*minD && z.DStar != 4 {
			t.Fatalf("DStar(%d) = %d too large", minD, z.DStar)
		}
	}
}

// TestLemma42Part1: for b >= α, the first index j > i with Z[j] >= b
// satisfies j - i <= b/α; if additionally b < Z[i] and b is a power-of-two
// multiple of α, then Z[j] = b and j - i = Z[j]/α. (The paper states
// "Z[i] = b", a typo for Z[j]; and its proof of Lemma 4.3 only ever invokes
// this with Z[i] >= 2x > x, i.e. the strict form checked here.)
func TestLemma42Part1(t *testing.T) {
	z := NewZSeq(4, 1000) // DStar = 1024
	for i := 0; i <= 512; i++ {
		for b := z.Alpha; b <= z.DStar; b *= 2 {
			j := z.NextAtLeast(i, b)
			if j-i > b/z.Alpha {
				t.Fatalf("i=%d b=%d: j-i = %d > b/α = %d", i, b, j-i, b/z.Alpha)
			}
			if b < z.At(i) {
				if z.At(j) != b {
					t.Fatalf("i=%d b=%d: Z[j]=%d, want b", i, b, z.At(j))
				}
				if j-i != z.At(j)/z.Alpha {
					t.Fatalf("i=%d b=%d: j-i=%d, want Z[j]/α=%d", i, b, j-i, z.At(j)/z.Alpha)
				}
			}
		}
	}
}

// TestLemma42Part2: for the smallest j > i with Z[j] > Z[i] or Z[j] = D*,
// j - i = Z[i]/α and all intermediate Z values are at most Z[i]/2.
func TestLemma42Part2(t *testing.T) {
	z := NewZSeq(4, 500) // DStar = 512
	for i := 1; i <= 256; i++ {
		zi := z.At(i)
		j := i + 1
		for z.At(j) <= zi && z.At(j) != z.DStar {
			j++
		}
		if j-i != zi/z.Alpha {
			t.Fatalf("i=%d: j-i = %d, want Z[i]/α = %d", i, j-i, zi/z.Alpha)
		}
		for k := i + 1; k < j; k++ {
			if z.At(k) > zi/2 {
				t.Fatalf("i=%d k=%d: Z[k] = %d > Z[i]/2 = %d", i, k, z.At(k), zi/2)
			}
		}
	}
}

// TestZFrequency: each value b = α·2^ℓ appears with period 2^ℓ, so among the
// first m indices it appears at most m/2^ℓ + 1 times — the counting used in
// the time analysis of Theorem 4.1.
func TestZFrequency(t *testing.T) {
	z := NewZSeq(4, 4096)
	const m = 2048
	counts := map[int]int{}
	for i := 1; i <= m; i++ {
		counts[z.At(i)]++
	}
	for b, cnt := range counts {
		period := b / z.Alpha
		if cnt > m/period+1 {
			t.Fatalf("value %d appears %d times in %d indices; period %d", b, cnt, m, period)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{InvBeta: 8, Depth: 2, W: 10, Alpha: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{InvBeta: 0, W: 1, Alpha: 4},
		{InvBeta: 3, W: 1, Alpha: 4},
		{InvBeta: 4, Depth: -1, W: 1, Alpha: 4},
		{InvBeta: 4, W: 0, Alpha: 4},
		{InvBeta: 4, W: 1, Alpha: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestDefaultParamsShape(t *testing.T) {
	p := DefaultParams(1024, 512)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth < 1 {
		t.Fatalf("depth = %d for a 512-radius search", p.Depth)
	}
	// Tiny searches degenerate to the trivial algorithm.
	p2 := DefaultParams(1024, 2)
	if p2.Depth != 0 {
		t.Fatalf("depth = %d for a radius-2 search, want 0", p2.Depth)
	}
	// β shrinks as D grows.
	if DefaultParams(4096, 4096).InvBeta < DefaultParams(4096, 16).InvBeta {
		t.Fatal("InvBeta should grow with D₀")
	}
}
