package core

import (
	"fmt"
	"math"
)

// Params fixes every tunable of Recursive-BFS. Defaults follow the paper's
// formulas (§4.3) with log₂ in place of unspecified logarithm bases and
// explicit multipliers sized for simulable n (DESIGN.md §6).
type Params struct {
	// InvBeta is 1/β. The paper sets β = 2^(-√(log D₀ · log log n)).
	InvBeta int
	// Depth is the recursion depth L: the number of cluster-graph levels.
	// Level Depth runs the trivial wavefront BFS. The paper sets
	// L = √(log D₀ / log log n).
	Depth int
	// W is w = Θ(log n), the distance-proxy stretch of Lemmas 2.2/4.1.
	W int
	// Alpha is the Z-sequence base α = 4.
	Alpha int
	// WMult is the multiplier in W = WMult·⌈log₂ n⌉ used by DefaultParams.
	WMult int
}

// log2Ceil returns ⌈log₂ n⌉ for n >= 1 (and 1 for n <= 2).
func log2Ceil(n int) int {
	lg := 1
	for 1<<lg < n {
		lg++
	}
	return lg
}

// DefaultParams derives the paper's parameter choices for an n-vertex
// network searched to distance D0: β = 2^(-⌈√(lg D₀ · lg lg n)⌉) and
// L = ⌈√(lg D₀ / lg lg n)⌉, clamped so that β⁻¹ stays below the search
// radius at every level (below that, recursion cannot pay off and the level
// is dropped).
func DefaultParams(n, d0 int) Params {
	if n < 2 {
		n = 2
	}
	if d0 < 1 {
		d0 = 1
	}
	lgD := log2Ceil(d0)
	lglgn := log2Ceil(log2Ceil(n) + 1)
	b := int(math.Ceil(math.Sqrt(float64(lgD * lglgn))))
	depth := int(math.Ceil(math.Sqrt(float64(lgD) / float64(lglgn))))
	p := Params{
		InvBeta: 1 << b,
		Depth:   depth,
		W:       3 * log2Ceil(n),
		Alpha:   4,
		WMult:   3,
	}
	p.clampDepth(d0)
	return p
}

// clampDepth keeps only recursion levels that genuinely shrink the search
// radius: level r searches radius D*, the smallest α·2^j >= w·β·D of the
// level below. When w·β >= 1/2 a level fails to halve the radius and can
// only add overhead — the finite-n edge of the paper's observation that the
// profitable depth is √(log D / log log n). Such levels are dropped.
func (p *Params) clampDepth(d0 int) {
	depth := 0
	d := d0
	for depth < p.Depth && d > p.InvBeta {
		next := NewZSeq(p.Alpha, (p.W*d+p.InvBeta-1)/p.InvBeta).DStar
		if next >= d {
			break // no shrinkage: recursion cannot pay at this scale
		}
		d = next
		depth++
	}
	if depth < p.Depth {
		p.Depth = depth
	}
}

// AutoParams returns parameters tuned for simulable network sizes: the
// paper's β and depth formulas, with the recursion capped at one level of
// clustering. Below n ≈ 2^20 the polylogarithmic cast overhead of a second
// level swamps the radius savings it buys (DESIGN.md §4), so deeper stacks
// are only worth building for the experiments that study them explicitly.
func AutoParams(n, d0 int) Params {
	p := DefaultParams(n, d0)
	if p.Depth > 1 {
		p.Depth = 1
	}
	return p
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.InvBeta < 1:
		return fmt.Errorf("core: InvBeta = %d, must be >= 1", p.InvBeta)
	case p.InvBeta&(p.InvBeta-1) != 0:
		return fmt.Errorf("core: InvBeta = %d, must be a power of two", p.InvBeta)
	case p.Depth < 0:
		return fmt.Errorf("core: negative recursion depth %d", p.Depth)
	case p.W < 1:
		return fmt.Errorf("core: W = %d, must be >= 1", p.W)
	case p.Alpha < 1:
		return fmt.Errorf("core: Alpha = %d, must be >= 1", p.Alpha)
	}
	return nil
}

// String renders the parameter set for experiment logs.
func (p Params) String() string {
	return fmt.Sprintf("beta=1/%d depth=%d w=%d alpha=%d", p.InvBeta, p.Depth, p.W, p.Alpha)
}
