package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/lbnet"
)

func TestVerifyGradientAcceptsTrueLabels(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(50), graph.Grid(8, 8), graph.Cycle(60)} {
		labels := graph.BFS(g, 0)
		net := lbnet.NewUnitNet(g, 0, 3)
		res := VerifyGradient(net, labels, g.N())
		if res.Violations != 0 {
			t.Fatalf("true BFS labels rejected: %d violations", res.Violations)
		}
	}
}

func TestVerifyGradientEnergyIsConstant(t *testing.T) {
	g := graph.Path(200)
	labels := graph.BFS(g, 0)
	net := lbnet.NewUnitNet(g, 0, 5)
	VerifyGradient(net, labels, 200)
	// Each vertex participates in at most 2 sweeps (sender at its label+1,
	// receiver at its own) — O(1) energy.
	for v := int32(0); v < 200; v++ {
		if e := net.LBEnergy(v); e > 2 {
			t.Fatalf("vertex %d spent %d LB units verifying; want <= 2", v, e)
		}
	}
}

func TestVerifyGradientDetectsMissingParent(t *testing.T) {
	g := graph.Path(30)
	labels := graph.BFS(g, 0)
	labels[10] = 15 // no neighbor labeled 14
	net := lbnet.NewUnitNet(g, 0, 7)
	res := VerifyGradient(net, labels, 40)
	if res.Violations == 0 {
		t.Fatal("gap in gradient not detected")
	}
}

func TestVerifyGradientMissesShortcut(t *testing.T) {
	// The counterexample from DESIGN.md: path s-a-b-u plus edge s-u, labeled
	// as if the shortcut didn't exist. Gradient verification PASSES — this
	// is exactly why it certifies only dist <= label.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3) // shortcut
	g := b.Graph()
	labels := []int32{0, 1, 2, 3} // wrong: dist(3) = 1
	net := lbnet.NewUnitNet(g, 0, 9)
	if res := VerifyGradient(net, labels, 5); res.Violations != 0 {
		t.Fatalf("gradient check unexpectedly caught the shortcut (%d violations)", res.Violations)
	}
	// The exact verifier must catch it.
	net2 := lbnet.NewUnitNet(g, 0, 11)
	if res := VerifyExact(net2, labels, 5); res.Violations == 0 {
		t.Fatal("exact verification missed the shortcut edge")
	}
}

func TestVerifyExactAcceptsTrueLabels(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Grid(7, 7), graph.Star(30)} {
		labels := graph.BFS(g, 0)
		net := lbnet.NewUnitNet(g, 0, 13)
		if res := VerifyExact(net, labels, g.N()); res.Violations != 0 {
			t.Fatalf("true labels rejected by exact verifier: %d", res.Violations)
		}
	}
}

func TestVerifyRecursiveBFSOutput(t *testing.T) {
	// End-to-end: labels produced by Recursive-BFS pass both verifiers.
	g := graph.Cycle(80)
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	dist, _, base := runBFS(t, g, p, []int32{0}, 40, 15)
	res := VerifyGradient(base, dist, 40)
	if res.Violations != 0 {
		t.Fatalf("recursive BFS output fails gradient check: %d", res.Violations)
	}
}
