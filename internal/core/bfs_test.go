package core

import (
	"testing"

	"repro/internal/decay"
	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/radio"
	"repro/internal/rng"
)

// runBFS builds a stack on a fresh UnitNet and returns labels plus the stack.
func runBFS(t *testing.T, g *graph.Graph, p Params, srcs []int32, d int, seed uint64) ([]int32, *Stack, *lbnet.UnitNet) {
	t.Helper()
	base := lbnet.NewUnitNet(g, 0, seed)
	st, err := BuildStack(base, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	dist := st.BFS(srcs, d)
	return dist, st, base
}

func TestTrivialDepthZeroFamilies(t *testing.T) {
	p := Params{InvBeta: 1, Depth: 0, W: 12, Alpha: 4}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(50)},
		{"star", graph.Star(40)},
		{"grid", graph.Grid(7, 8)},
		{"complete", graph.Complete(25)},
	} {
		dist, _, _ := runBFS(t, tc.g, p, []int32{0}, tc.g.N(), 3)
		if bad := VerifyAgainstReference(tc.g, []int32{0}, dist, tc.g.N()); bad != 0 {
			t.Errorf("%s: %d mismatches", tc.name, bad)
		}
	}
}

func TestRecursiveDepthOneFamilies(t *testing.T) {
	r := rng.New(5)
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		d    int
	}{
		{"cycle", graph.Cycle(120), 60},
		{"path", graph.Path(100), 99},
		{"grid", graph.Grid(12, 12), 22},
		{"gnp", graph.ConnectedGNP(150, 0.03, r), 150},
		{"tree", graph.BinaryTree(127), 12},
		{"geometric", graph.RandomGeometric(150, 0.12, r, true), 150},
		{"caterpillar", graph.Caterpillar(30, 2), 31},
	} {
		dist, st, _ := runBFS(t, tc.g, p, []int32{0}, tc.d, 7)
		if bad := VerifyAgainstReference(tc.g, []int32{0}, dist, tc.d); bad != 0 {
			t.Errorf("%s: %d mismatches", tc.name, bad)
		}
		if st.CastFailures() != 0 {
			t.Errorf("%s: %d cast failures", tc.name, st.CastFailures())
		}
	}
}

func TestRecursiveManySeeds(t *testing.T) {
	g := graph.Cycle(100)
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	for seed := uint64(0); seed < 10; seed++ {
		dist, _, _ := runBFS(t, g, p, []int32{0}, 50, seed)
		if bad := VerifyAgainstReference(g, []int32{0}, dist, 50); bad != 0 {
			t.Fatalf("seed %d: %d mismatches", seed, bad)
		}
	}
}

func TestRecursiveDepthTwo(t *testing.T) {
	g := graph.Cycle(512)
	p := DefaultParams(512, 256)
	if p.Depth < 2 {
		p.Depth = 2
	}
	dist, st, _ := runBFS(t, g, p, []int32{0}, 256, 9)
	if bad := VerifyAgainstReference(g, []int32{0}, dist, 256); bad != 0 {
		t.Fatalf("%d mismatches at depth %d", bad, p.Depth)
	}
	if len(st.VNets) != p.Depth {
		t.Fatalf("stack has %d levels, want %d", len(st.VNets), p.Depth)
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := graph.Path(80)
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	srcs := []int32{0, 79}
	dist, _, _ := runBFS(t, g, p, srcs, 40, 11)
	if bad := VerifyAgainstReference(g, srcs, dist, 40); bad != 0 {
		t.Fatalf("%d mismatches", bad)
	}
}

func TestRadiusCap(t *testing.T) {
	g := graph.Path(60)
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	dist, _, _ := runBFS(t, g, p, []int32{0}, 20, 13)
	for v := int32(0); v < 60; v++ {
		want := v
		if v > 20 {
			want = Unreached
		}
		if dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(40)
	for v := int32(0); v < 19; v++ {
		b.AddEdge(v, v+1)
	}
	for v := int32(20); v < 39; v++ {
		b.AddEdge(v, v+1)
	}
	g := b.Graph()
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	dist, _, _ := runBFS(t, g, p, []int32{0}, 40, 15)
	for v := int32(20); v < 40; v++ {
		if dist[v] != Unreached {
			t.Fatalf("vertex %d in other component labeled %d", v, dist[v])
		}
	}
	if bad := VerifyAgainstReference(g, []int32{0}, dist, 40); bad != 0 {
		t.Fatalf("%d mismatches", bad)
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Grid(10, 10)
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	d1, _, b1 := runBFS(t, g, p, []int32{0}, 18, 17)
	d2, _, b2 := runBFS(t, g, p, []int32{0}, 18, 17)
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatal("labels differ across identical seeds")
		}
		if b1.LBEnergy(int32(v)) != b2.LBEnergy(int32(v)) {
			t.Fatal("energy differs across identical seeds")
		}
	}
}

// TestClaims instruments a run and checks Claims 1 and 2: per-vertex X_i
// participation and per-cluster Special Update counts stay polylogarithmic
// (far below the stage count).
func TestClaims(t *testing.T) {
	g := graph.Cycle(256)
	p := Params{InvBeta: 8, Depth: 1, W: 24, Alpha: 4}
	base := lbnet.NewUnitNet(g, 0, 19)
	st, err := BuildStack(base, p, 19)
	if err != nil {
		t.Fatal(err)
	}
	st.Inst = NewInstrumentation()
	dist := st.BFS([]int32{0}, 128)
	if bad := VerifyAgainstReference(g, []int32{0}, dist, 128); bad != 0 {
		t.Fatalf("%d mismatches", bad)
	}
	stages := int64(128 / 8)
	if mx := st.Inst.MaxXi(0); mx == 0 || mx > stages/2+8 {
		t.Fatalf("Claim 1: max X_i participation = %d out of %d stages", mx, stages)
	}
	if ms := st.Inst.MaxSpecial(0); ms == 0 || ms > stages {
		t.Fatalf("Claim 2: max Special Updates = %d out of %d stages", ms, stages)
	}
	if st.Inst.SenderViolations != 0 {
		t.Fatalf("%d wavefront senders were excluded from X_i", st.Inst.SenderViolations)
	}
}

// TestInvariant41 runs the expensive reference check: at every stage, every
// active cluster's true wavefront distance lies within [L_i, U_i].
func TestInvariant41(t *testing.T) {
	for _, gg := range []*graph.Graph{graph.Cycle(128), graph.Grid(11, 11)} {
		p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
		base := lbnet.NewUnitNet(gg, 0, 23)
		st, err := BuildStack(base, p, 23)
		if err != nil {
			t.Fatal(err)
		}
		st.Inst = NewInstrumentation()
		st.Inst.CheckInvariant = true
		d := gg.N() / 2
		dist := st.BFS([]int32{0}, d)
		if bad := VerifyAgainstReference(gg, []int32{0}, dist, d); bad != 0 {
			t.Fatalf("%d mismatches", bad)
		}
		if st.Inst.InvariantViolations != 0 {
			t.Fatalf("Invariant 4.1 violated %d times", st.Inst.InvariantViolations)
		}
	}
}

// TestFigure3Trace reproduces the Figure 3 data series for one cluster.
func TestFigure3Trace(t *testing.T) {
	g := graph.Cycle(200)
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	base := lbnet.NewUnitNet(g, 0, 29)
	st, err := BuildStack(base, p, 29)
	if err != nil {
		t.Fatal(err)
	}
	st.Inst = NewInstrumentation()
	// Trace the cluster of the vertex opposite the source.
	st.Inst.TraceCluster = st.VNets[0].Clustering().ClusterOf[100]
	st.BFS([]int32{0}, 100)
	tr := st.Inst.Trace
	if len(tr) == 0 {
		t.Fatal("no trace recorded")
	}
	for _, pt := range tr {
		if pt.U < pt.L {
			t.Fatalf("stage %d: U=%d < L=%d", pt.Stage, pt.U, pt.L)
		}
		if pt.TrueDist >= 0 && pt.L < infBound && (pt.TrueDist < pt.L || pt.TrueDist > pt.U) {
			t.Fatalf("stage %d: true distance %d outside [%d, %d]", pt.Stage, pt.TrueDist, pt.L, pt.U)
		}
		if pt.Z < int64(p.Alpha) {
			t.Fatalf("stage %d: Z tick %d below α", pt.Stage, pt.Z)
		}
	}
	// The true distance must decrease to 0 as the wavefront arrives.
	last := tr[len(tr)-1]
	first := tr[0]
	if first.TrueDist >= 0 && last.TrueDist >= 0 && last.TrueDist > first.TrueDist {
		t.Fatalf("wavefront distance increased: %d -> %d", first.TrueDist, last.TrueDist)
	}
}

// TestEnergySleepers: vertices far behind the wavefront must spend far less
// energy during the sweep than the paper's baseline would charge. We compare
// recursive-BFS energy of an early-settled vertex against the always-awake
// decay baseline's for a late vertex.
func TestEnergySleeperAsymmetry(t *testing.T) {
	g := graph.Path(200)
	p := Params{InvBeta: 8, Depth: 1, W: 24, Alpha: 4}
	_, _, base := runBFS(t, g, p, []int32{0}, 199, 31)
	// Vertex 1 settles in stage 0 and deactivates; it must not pay for the
	// remaining ~24 stages of wavefront advancement (β⁻¹ = 8 LBs each).
	settledEarly := base.LBEnergy(1)
	frontierLate := base.LBEnergy(198)
	if settledEarly >= frontierLate {
		t.Fatalf("early vertex spent %d >= late vertex %d; sleeping is broken",
			settledEarly, frontierLate)
	}
}

func TestBFSAutoFindsDiameter(t *testing.T) {
	g := graph.Cycle(96)
	base := lbnet.NewUnitNet(g, 0, 37)
	dist, st, err := BFSAuto(base, []int32{0}, 37)
	if err != nil {
		t.Fatal(err)
	}
	if bad := VerifyAgainstReference(g, []int32{0}, dist, g.N()); bad != 0 {
		t.Fatalf("%d mismatches", bad)
	}
	if st == nil {
		t.Fatal("no stack returned")
	}
}

func TestBFSOnPhysNet(t *testing.T) {
	// Full integration down to radio physics: smaller graph, w.h.p. params.
	g := graph.Cycle(48)
	eng := radio.NewEngine(g)
	base := lbnet.NewPhysNet(eng, decay.ParamsFor(48, 10), 41)
	p := Params{InvBeta: 4, Depth: 1, W: 20, Alpha: 4}
	st, err := BuildStack(base, p, 41)
	if err != nil {
		t.Fatal(err)
	}
	dist := st.BFS([]int32{0}, 24)
	if bad := VerifyAgainstReference(g, []int32{0}, dist, 24); bad != 0 {
		t.Fatalf("%d mismatches on the physical stack", bad)
	}
	if eng.MsgViolations() != 0 {
		t.Fatalf("RN[O(log n)] budget violated %d times", eng.MsgViolations())
	}
	if eng.MaxEnergy() == 0 {
		t.Fatal("physical meters did not move")
	}
}

// TestFailureInjection: with a small LB failure rate the protocol may label
// some vertices late (or not at all), but must never label them too small —
// labels remain upper-bounded by true distance + slack in no case below
// true distance.
func TestFailureInjectionNeverUnderestimates(t *testing.T) {
	g := graph.Cycle(100)
	p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	base := lbnet.NewUnitNet(g, 0.02, 43)
	st, err := BuildStack(base, p, 43)
	if err != nil {
		t.Fatal(err)
	}
	dist := st.BFS([]int32{0}, 50)
	ref := graph.BFS(g, 0)
	for v := range dist {
		if dist[v] != Unreached && dist[v] < ref[v] {
			t.Fatalf("vertex %d labeled %d below true distance %d", v, dist[v], ref[v])
		}
	}
}

func TestBuildStackRejectsBadParams(t *testing.T) {
	base := lbnet.NewUnitNet(graph.Path(10), 0, 1)
	if _, err := BuildStack(base, Params{InvBeta: 3, W: 4, Alpha: 4}, 1); err == nil {
		t.Fatal("expected error for non-power-of-two InvBeta")
	}
}

func TestLevelAccessors(t *testing.T) {
	g := graph.Grid(8, 8)
	base := lbnet.NewUnitNet(g, 0, 47)
	p := Params{InvBeta: 4, Depth: 2, W: 18, Alpha: 4}
	st, err := BuildStack(base, p, 47)
	if err != nil {
		t.Fatal(err)
	}
	if st.Level(0) != lbnet.Net(base) {
		t.Fatal("level 0 is not the base")
	}
	if st.Level(1).N() != st.VNets[0].N() || st.Level(2).N() != st.VNets[1].N() {
		t.Fatal("level accessor mismatch")
	}
	// Levels shrink monotonically.
	if st.Level(1).N() > st.Level(0).N() || st.Level(2).N() > st.Level(1).N() {
		t.Fatal("cluster graphs should not grow")
	}
}
