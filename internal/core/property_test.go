package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/rng"
)

// TestPropertyRecursiveBFSMatchesReference fuzzes graph, source, radius and
// parameters: Recursive-BFS must always reproduce the sequential BFS.
func TestPropertyRecursiveBFSMatchesReference(t *testing.T) {
	check := func(seed uint64, rawN, rawSrc, rawD, rawBeta uint8) bool {
		r := rng.New(seed)
		n := 24 + int(rawN%96)
		g := graph.ConnectedGNP(n, 2.5/float64(n), r)
		src := int32(int(rawSrc) % n)
		d := 1 + int(rawD)%n
		invBeta := 2 << (rawBeta % 3) // 2, 4, 8
		p := Params{InvBeta: invBeta, Depth: 1, W: 24, Alpha: 4}
		base := lbnet.NewUnitNet(g, 0, seed)
		st, err := BuildStack(base, p, seed)
		if err != nil {
			return false
		}
		dist := st.BFS([]int32{src}, d)
		return VerifyAgainstReference(g, []int32{src}, dist, d) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMonotoneRadius: enlarging the search radius never un-labels a
// vertex and never changes an existing label.
func TestPropertyMonotoneRadius(t *testing.T) {
	check := func(seed uint64, rawD uint8) bool {
		g := graph.Cycle(80)
		d1 := 4 + int(rawD)%30
		d2 := d1 + 10
		p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
		st1, err := BuildStack(lbnet.NewUnitNet(g, 0, seed), p, seed)
		if err != nil {
			return false
		}
		st2, err := BuildStack(lbnet.NewUnitNet(g, 0, seed), p, seed)
		if err != nil {
			return false
		}
		a := st1.BFS([]int32{0}, d1)
		b := st2.BFS([]int32{0}, d2)
		for v := range a {
			if a[v] != Unreached && a[v] != b[v] {
				return false
			}
			if a[v] == Unreached && b[v] != Unreached && int(b[v]) <= d1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGradientOfOutput: any labeling Recursive-BFS emits passes the
// gradient verifier on an independent network instance.
func TestPropertyGradientOfOutput(t *testing.T) {
	check := func(seed uint64, rawSrc uint8) bool {
		r := rng.New(seed)
		g := graph.RandomTree(60, r)
		src := int32(int(rawSrc) % 60)
		p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
		st, err := BuildStack(lbnet.NewUnitNet(g, 0, seed), p, seed)
		if err != nil {
			return false
		}
		dist := st.BFS([]int32{src}, 60)
		verifier := lbnet.NewUnitNet(g, 0, seed+1)
		return VerifyGradient(verifier, dist, 60).Violations == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySourceInvariance: distances from a multi-source set equal the
// minimum over per-source runs.
func TestPropertySourceInvariance(t *testing.T) {
	check := func(seed uint64, rawA, rawB uint8) bool {
		g := graph.Grid(8, 8)
		a := int32(int(rawA) % 64)
		b := int32(int(rawB) % 64)
		p := Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
		st, err := BuildStack(lbnet.NewUnitNet(g, 0, seed), p, seed)
		if err != nil {
			return false
		}
		multi := st.BFS([]int32{a, b}, 64)
		ref := graph.MultiSourceBFS(g, []int32{a, b})
		for v := range multi {
			if multi[v] != ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
