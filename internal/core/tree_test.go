package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/lbnet"
	"repro/internal/rng"
)

func TestParentsOnFamilies(t *testing.T) {
	r := rng.New(3)
	for _, g := range []*graph.Graph{
		graph.Path(50), graph.Grid(8, 8), graph.Cycle(40),
		graph.ConnectedGNP(60, 0.06, r), graph.Star(30),
	} {
		labels := graph.BFS(g, 0)
		net := lbnet.NewUnitNet(g, 0, 5)
		parent := Parents(net, labels, g.N())
		if bad := ValidateParents(net, labels, parent); bad != 0 {
			t.Errorf("n=%d: %d inconsistent parents", g.N(), bad)
		}
		if parent[0] != -1 {
			t.Error("root should have no parent")
		}
	}
}

func TestParentsEnergyConstant(t *testing.T) {
	g := graph.Path(200)
	labels := graph.BFS(g, 0)
	net := lbnet.NewUnitNet(g, 0, 7)
	Parents(net, labels, 200)
	for v := int32(0); v < 200; v++ {
		if e := net.LBEnergy(v); e > 2 {
			t.Fatalf("vertex %d spent %d LB units; parents must cost O(1)", v, e)
		}
	}
}

func TestParentsPathsLeadToRoot(t *testing.T) {
	g := graph.Grid(9, 9)
	labels := graph.BFS(g, 0)
	net := lbnet.NewUnitNet(g, 0, 9)
	parent := Parents(net, labels, g.N())
	// Following parents from any vertex must reach the root in label steps.
	for v := int32(0); int(v) < g.N(); v++ {
		cur, steps := v, int32(0)
		for labels[cur] > 0 {
			cur = parent[cur]
			steps++
			if cur < 0 || steps > labels[v] {
				t.Fatalf("parent chain from %d broken at step %d", v, steps)
			}
		}
		if steps != labels[v] {
			t.Fatalf("chain length %d != label %d for vertex %d", steps, labels[v], v)
		}
	}
}

// TestFailureSweep documents robustness: with growing LB failure rates the
// recursive BFS may leave vertices unlabeled or late, but never labels a
// vertex below its true distance, and cast divergences stay observable.
func TestFailureSweep(t *testing.T) {
	g := graph.Cycle(96)
	ref := graph.BFS(g, 0)
	for _, f := range []float64{0, 0.01, 0.05, 0.1} {
		base := lbnet.NewUnitNet(g, f, 11)
		st, err := BuildStack(base, Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}, 11)
		if err != nil {
			t.Fatal(err)
		}
		dist := st.BFS([]int32{0}, 48)
		under := 0
		for v := range dist {
			if dist[v] != Unreached && dist[v] < ref[v] {
				under++
			}
		}
		if under != 0 {
			t.Fatalf("failProb=%v: %d labels below true distance (safety violated)", f, under)
		}
		if f == 0 {
			if bad := VerifyAgainstReference(g, []int32{0}, dist, 48); bad != 0 {
				t.Fatalf("failProb=0 must be exact; %d mismatches", bad)
			}
		}
	}
}
