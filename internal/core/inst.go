package core

import (
	"repro/internal/graph"
)

// Instrumentation collects the quantities behind the paper's efficiency and
// correctness arguments. Attach one to a Stack before calling BFS; nil
// disables all collection. Only the top-level recursion (level 0) is traced
// for Figure 3; counters cover every level.
type Instrumentation struct {
	// XiCount[r][v] counts the stages i at which vertex v of level r was in
	// X_i (Claim 1: Õ(1) per vertex).
	XiCount map[int][]int64
	// SpecialCount[r][c] counts the Special Updates cluster c of level r
	// participated in (Claim 2: Õ(1) per cluster).
	SpecialCount map[int][]int64
	// TrivialCalls[r] counts trivial-BFS invocations at level r.
	TrivialCalls map[int]int64
	// SenderViolations counts wavefront senders excluded from X_i — events
	// Invariant 4.1 promises never happen.
	SenderViolations int64
	// CheckInvariant enables the (expensive) reference-based Invariant 4.1
	// check at level 0.
	CheckInvariant bool
	// InvariantViolations counts stages at which some active cluster's true
	// wavefront distance fell outside [L_i(C), U_i(C)] (= Low + High).
	InvariantViolations int64
	// LowViolations counts the dangerous direction — true distance below
	// L_i(C), which could put a needed vertex to sleep.
	LowViolations int64
	// HighViolations counts true distance above U_i(C); U only drives the
	// Claim 1/2 energy argument, so these are benign for correctness.
	HighViolations int64
	// TraceCluster, if >= 0, selects a level-0 cluster whose (L, U, true
	// distance) evolution is recorded per stage — the data behind Figure 3.
	TraceCluster int32
	// Trace holds the recorded points.
	Trace []TracePoint
}

// TracePoint is one stage of the Figure 3 time evolution for a fixed
// cluster: the interval [L, U] maintained by the algorithm, the Z-sequence
// tick, and the true distance from the wavefront (∞ encoded as -1).
type TracePoint struct {
	Stage    int64
	Z        int64
	L, U     int64
	TrueDist int64
}

// NewInstrumentation returns an empty collector with tracing disabled.
func NewInstrumentation() *Instrumentation {
	return &Instrumentation{
		XiCount:      make(map[int][]int64),
		SpecialCount: make(map[int][]int64),
		TrivialCalls: make(map[int]int64),
		TraceCluster: -1,
	}
}

// observeStage records X_i membership, the Figure 3 trace, and (optionally)
// the Invariant 4.1 reference check at the start of stage i of level r.
func (in *Instrumentation) observeStage(r int, i int64, s *Stack, active []bool, dist []int32, L, U []int64, z ZSeq, clusterOf []int32, invB int64) {
	n := len(active)
	xs := in.XiCount[r]
	if xs == nil {
		xs = make([]int64, n)
		in.XiCount[r] = xs
	}
	for v := 0; v < n; v++ {
		if active[v] && L[clusterOf[v]] <= invB {
			xs[v]++
		}
	}
	needTrace := r == 0 && in.TraceCluster >= 0
	if !needTrace && !(in.CheckInvariant && r == 0) {
		return
	}
	// True wavefront distances: multi-source BFS from W_i on the level graph.
	g := s.Level(r).Graph()
	var front []int32
	for v := int32(0); v < int32(n); v++ {
		if int64(dist[v]) == i*invB && dist[v] >= 0 {
			front = append(front, v)
		}
	}
	var ref []int32
	if len(front) > 0 {
		ref = graph.MultiSourceBFS(g, front)
	}
	trueDistOf := func(c int32) int64 {
		if ref == nil {
			return -1
		}
		td := int64(-1)
		for v := int32(0); v < int32(n); v++ {
			if clusterOf[v] != c || ref[v] == graph.Unreachable {
				continue
			}
			if td == -1 || int64(ref[v]) < td {
				td = int64(ref[v])
			}
		}
		return td
	}
	if needTrace {
		c := in.TraceCluster
		in.Trace = append(in.Trace, TracePoint{
			Stage:    i,
			Z:        int64(z.At(int(i + 1))),
			L:        L[c],
			U:        U[c],
			TrueDist: trueDistOf(c),
		})
	}
	if in.CheckInvariant && r == 0 && ref != nil {
		// Check every cluster with an active member.
		nc := len(L)
		hasActive := make([]bool, nc)
		for v := 0; v < n; v++ {
			if active[v] {
				hasActive[clusterOf[v]] = true
			}
		}
		for c := int32(0); int(c) < nc; c++ {
			if !hasActive[c] || L[c] >= infBound {
				continue
			}
			td := trueDistOf(c)
			if td < 0 {
				continue // cluster unreachable from the current wavefront
			}
			if td < L[c] {
				in.LowViolations++
				in.InvariantViolations++
			} else if td > U[c] {
				in.HighViolations++
				in.InvariantViolations++
			}
		}
	}
}

// countSpecial records a Special Update for cluster c of level r.
func (in *Instrumentation) countSpecial(r int, c int) {
	sc := in.SpecialCount[r]
	if sc == nil {
		in.SpecialCount[r] = make([]int64, 0)
		sc = in.SpecialCount[r]
	}
	for len(sc) <= c {
		sc = append(sc, 0)
	}
	sc[c]++
	in.SpecialCount[r] = sc
}

// MaxXi returns the maximum X_i participation count at level r (Claim 1).
func (in *Instrumentation) MaxXi(r int) int64 {
	var m int64
	for _, v := range in.XiCount[r] {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxSpecial returns the maximum Special Update count at level r (Claim 2).
func (in *Instrumentation) MaxSpecial(r int) int64 {
	var m int64
	for _, v := range in.SpecialCount[r] {
		if v > m {
			m = v
		}
	}
	return m
}
