package core

import (
	"repro/internal/lbnet"
	"repro/internal/radio"
)

// MsgParent is the message kind of the parent-extraction sweep.
const MsgParent = 0x39

// Parents turns a BFS labeling into explicit tree structure: each vertex
// with label k > 0 learns the ID of one neighbor labeled k-1 (its parent).
// One Local-Broadcast per layer; every vertex participates in at most two,
// so the cost is O(1) energy and O(maxLabel) time — the up-cast/down-cast
// backbone the paper's §1 dissemination application rests on. Vertices with
// no delivered parent (unlabeled, or label 0) get -1 (the root keeps -1 so
// callers can spot it by label).
func Parents(net lbnet.Net, labels []int32, maxLabel int) []int32 {
	n := net.N()
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = -1
	}
	var senders []radio.TX
	var receivers []int32
	got := make([]radio.Msg, n)
	ok := make([]bool, n)
	for k := int32(1); int(k) <= maxLabel; k++ {
		senders, receivers = senders[:0], receivers[:0]
		for v := int32(0); v < int32(n); v++ {
			switch labels[v] {
			case k - 1:
				senders = append(senders, radio.TX{ID: v, Msg: radio.Msg{Kind: MsgParent, A: uint64(v)}})
			case k:
				receivers = append(receivers, v)
			}
		}
		if len(senders) == 0 && len(receivers) == 0 {
			net.SkipLB(1)
			continue
		}
		net.LocalBroadcast(senders, receivers, got[:len(receivers)], ok[:len(receivers)])
		for j, v := range receivers {
			if ok[j] && got[j].Kind == MsgParent {
				parent[v] = int32(got[j].A)
			}
		}
	}
	return parent
}

// ValidateParents counts vertices whose parent pointer is inconsistent with
// the labeling: a labeled non-root vertex must have a parent that is an
// adjacent vertex exactly one layer closer. For use in tests and examples.
func ValidateParents(net lbnet.Net, labels, parent []int32) int {
	g := net.Graph()
	bad := 0
	for v := int32(0); int(v) < len(labels); v++ {
		if labels[v] <= 0 {
			continue
		}
		p := parent[v]
		if p < 0 || labels[p] != labels[v]-1 || !g.HasEdge(v, p) {
			bad++
		}
	}
	return bad
}
