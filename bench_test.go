package repro_test

// Benchmarks: one per experiment table of the reproduction. Each reports,
// beyond wall time, the paper's own cost metrics via b.ReportMetric —
// energy in Local-Broadcast units (LB/vertex) and time in LB calls — so
// `go test -bench` regenerates the quantitative shape of every claim.
//
// Workloads are declared as harness.Scenario values — the same declarative
// form cmd/experiments and `radiobfs sweep` use — and every iteration
// executes one harness trial, with the iteration counter as the trial
// index, so each iteration draws fresh derived randomness.

import (
	"fmt"
	"runtime"
	"testing"

	"repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/lbnet"
	"repro/internal/lowerbound"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/vnet"
)

// execTrial runs trial i of one scenario instance through the harness on a
// pooled worker context — the same execution path a sweep worker uses — and
// fails the benchmark on any trial error.
func execTrial(b *testing.B, ctx *harness.Context, sc *harness.Scenario, inst harness.Instance, i int) harness.Result {
	b.Helper()
	res := harness.ExecuteCtx(ctx, sc, harness.TrialFor(sc, inst, i, 1))
	if res.Err != "" {
		b.Fatal(res.Err)
	}
	return res
}

// requireExact fails the benchmark when a trial mislabeled any vertex.
func requireExact(b *testing.B, r harness.Result) {
	b.Helper()
	if bad := r.Metrics["mislabeled"]; bad != 0 {
		b.Fatalf("%v mislabeled", bad)
	}
}

// BenchmarkRegistry runs every registered algorithm on one shared small
// instance through the harness's registry dispatch — the same path sweeps
// use. The suite is enumerated from repro.Algorithms(), so a newly
// registered algorithm gets a tracked benchmark without touching this file.
func BenchmarkRegistry(b *testing.B) {
	ctx := harness.NewContext()
	for _, alg := range repro.Algorithms() {
		sc := &harness.Scenario{
			Name:      "bench-registry-" + alg.Name(),
			Instances: []harness.Instance{{Family: "grid", N: 49}},
			Algo:      harness.Algo(alg.Name()),
		}
		inst := sc.Instances[0]
		b.Run(alg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				execTrial(b, ctx, sc, inst, i)
			}
		})
	}
}

// BenchmarkE1RecursiveBFS measures Theorem 4.1's algorithm end to end with
// fixed machinery (β = 1/8, one clustering level) so the scaling across n is
// apples-to-apples; BenchmarkAblationDepth/Beta sweep the design choices.
func BenchmarkE1RecursiveBFS(b *testing.B) {
	ctx := harness.NewContext()
	p := core.Params{InvBeta: 8, Depth: 1, W: 24, Alpha: 4}
	sc := &harness.Scenario{
		Name:      "bench-E1-rec",
		Instances: harness.Cross([]string{"cycle"}, []int{128, 256, 512}, func(_ string, n int) int { return n / 2 }),
		Algo:      harness.AlgoRecursive,
		Params:    &p,
	}
	for _, inst := range sc.Instances {
		b.Run(fmt.Sprintf("%s/n=%d", inst.Family, inst.N), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = execTrial(b, ctx, sc, inst, i)
				requireExact(b, last)
			}
			b.ReportMetric(last.Metrics["maxLB"], "LBenergy/vtx")
			b.ReportMetric(last.Metrics["timeLB"], "LBtime")
		})
	}
}

// BenchmarkE1DecayBFS is the Θ(D log² n)-energy baseline on real radio slots.
func BenchmarkE1DecayBFS(b *testing.B) {
	ctx := harness.NewContext()
	sc := &harness.Scenario{
		Name:      "bench-E1-decay",
		Instances: harness.Cross([]string{"cycle"}, []int{128, 256, 512}, nil),
		Algo:      harness.AlgoDecay,
		Passes:    8, // fixed across n so the scaling is apples-to-apples
	}
	for _, inst := range sc.Instances {
		b.Run(fmt.Sprintf("%s/n=%d", inst.Family, inst.N), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = execTrial(b, ctx, sc, inst, i)
				requireExact(b, last)
			}
			b.ReportMetric(last.Metrics["physMax"], "slots/vtx")
		})
	}
}

// BenchmarkE2LocalBroadcast measures Lemma 2.4 under heavy contention.
func BenchmarkE2LocalBroadcast(b *testing.B) {
	ctx := harness.NewContext()
	for _, deg := range []int{16, 128} {
		// Graph and sender list are trial-invariant: build once per
		// sub-benchmark so each trial times only the Local-Broadcast.
		g := graph.Star(deg + 1)
		p := decay.ParamsFor(deg+1, 8)
		senders := make([]radio.TX, 0, deg)
		for v := 1; v <= deg; v++ {
			senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
		}
		got := make([]radio.Msg, 1)
		ok := make([]bool, 1)
		sc := &harness.Scenario{
			Name:      fmt.Sprintf("bench-E2-deg%d", deg),
			Instances: []harness.Instance{{Family: "star", N: deg + 1}},
			Run: func(tr harness.Trial) (harness.Metrics, error) {
				eng := radio.NewEngine(g)
				decay.LocalBroadcast(eng, p, senders, []int32{0}, rng.Derive(tr.Seed, 0xb2), got, ok)
				return harness.Metrics{"ok": harness.BoolMetric(ok[0])}, nil
			},
		}
		inst := sc.Instances[0]
		b.Run(fmt.Sprintf("deg=%d", deg), func(b *testing.B) {
			miss := 0
			for i := 0; i < b.N; i++ {
				if execTrial(b, ctx, sc, inst, i).Metrics["ok"] != 1 {
					miss++
				}
			}
			b.ReportMetric(float64(miss)/float64(b.N), "failrate")
		})
	}
}

// BenchmarkE3Cluster measures Lemma 2.5's construction.
func BenchmarkE3Cluster(b *testing.B) {
	ctx := harness.NewContext()
	for _, n := range []int{256, 1024} {
		g, _ := graph.Named("grid", n, 1)
		cfg := cluster.DefaultConfig(g.N(), 8)
		sc := &harness.Scenario{
			Name:      fmt.Sprintf("bench-E3-n%d", n),
			Instances: []harness.Instance{{Family: "grid", N: n}},
			Run: func(tr harness.Trial) (harness.Metrics, error) {
				base := lbnet.NewUnitNet(g, 0, tr.Seed)
				cl := cluster.Build(base, cfg, tr.Seed)
				return harness.Metrics{"radius": float64(cl.Radius()), "TMax": float64(cfg.TMax)}, nil
			},
		}
		inst := sc.Instances[0]
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = execTrial(b, ctx, sc, inst, i)
			}
			b.ReportMetric(last.Metrics["radius"], "radius")
			b.ReportMetric(last.Metrics["TMax"], "TMax")
		})
	}
}

// BenchmarkE4DistanceProxy measures the Lemma 2.2/2.3 machinery (ideal MPX
// plus cluster-graph BFS).
func BenchmarkE4DistanceProxy(b *testing.B) {
	ctx := harness.NewContext()
	g := graph.Path(2048)
	sc := &harness.Scenario{
		Name:      "bench-E4",
		Instances: []harness.Instance{{Family: "path", N: g.N()}},
		Run: func(tr harness.Trial) (harness.Metrics, error) {
			ideal := cluster.BuildIdeal(g, 8, tr.Seed)
			cg := cluster.ClusterGraphOf(g, ideal.ClusterOf, len(ideal.Center))
			graph.BFS(cg, ideal.ClusterOf[0])
			return harness.Metrics{"clusters": float64(len(ideal.Center))}, nil
		},
	}
	inst := sc.Instances[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		execTrial(b, ctx, sc, inst, i)
	}
}

// BenchmarkE5Casts measures one full Downcast (Lemma 3.1) on a prebuilt
// virtual network: the setup is shared, each trial is a single Downcast.
func BenchmarkE5Casts(b *testing.B) {
	ctx := harness.NewContext()
	g, _ := graph.Named("grid", 400, 1)
	base := lbnet.NewUnitNet(g, 0, 1)
	cl := cluster.Build(base, cluster.DefaultConfig(g.N(), 4), 1)
	vn := vnet.New(base, cl)
	nc := vn.N()
	part := make([]bool, nc)
	has := make([]bool, nc)
	msgs := make([]radio.Msg, nc)
	for c := range part {
		part[c], has[c] = true, true
	}
	memberGot := make([]radio.Msg, g.N())
	memberOk := make([]bool, g.N())
	sc := &harness.Scenario{
		Name:      "bench-E5-cast",
		Instances: []harness.Instance{{Family: "grid", N: g.N()}},
		Run: func(harness.Trial) (harness.Metrics, error) {
			vn.Downcast(part, has, msgs, memberGot, memberOk)
			return harness.Metrics{"parentLBs": float64(vn.CastLBs())}, nil
		},
	}
	inst := sc.Instances[0]
	b.ResetTimer()
	var last harness.Result
	for i := 0; i < b.N; i++ {
		last = execTrial(b, ctx, sc, inst, i)
	}
	b.ReportMetric(last.Metrics["parentLBs"], "parentLBs")
}

// BenchmarkE5VirtualLB measures one simulated Local-Broadcast on G*
// (Lemma 3.2).
func BenchmarkE5VirtualLB(b *testing.B) {
	ctx := harness.NewContext()
	g, _ := graph.Named("grid", 400, 1)
	base := lbnet.NewUnitNet(g, 0, 1)
	cl := cluster.Build(base, cluster.DefaultConfig(g.N(), 4), 1)
	vn := vnet.New(base, cl)
	if vn.N() < 2 {
		b.Skip("degenerate clustering")
	}
	senders := []radio.TX{{ID: 0, Msg: radio.Msg{A: 1}}}
	receivers := []int32{1}
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	sc := &harness.Scenario{
		Name:      "bench-E5-vlb",
		Instances: []harness.Instance{{Family: "grid", N: g.N()}},
		Run: func(harness.Trial) (harness.Metrics, error) {
			vn.LocalBroadcast(senders, receivers, got, ok)
			return harness.Metrics{"parentLBs": float64(vn.VLBCost())}, nil
		},
	}
	inst := sc.Instances[0]
	b.ResetTimer()
	var last harness.Result
	for i := 0; i < b.N; i++ {
		last = execTrial(b, ctx, sc, inst, i)
	}
	b.ReportMetric(last.Metrics["parentLBs"], "parentLBs")
}

// BenchmarkE7Claims measures the instrumented Recursive-BFS used for the
// Claim 1/2 counters.
func BenchmarkE7Claims(b *testing.B) {
	ctx := harness.NewContext()
	g := graph.Cycle(256)
	sc := &harness.Scenario{
		Name:      "bench-E7",
		Instances: []harness.Instance{{Family: "cycle", N: g.N(), MaxDist: 128}},
		Run: func(tr harness.Trial) (harness.Metrics, error) {
			base := lbnet.NewUnitNet(g, 0, tr.Seed)
			st, err := core.BuildStack(base, core.Params{InvBeta: 8, Depth: 1, W: 24, Alpha: 4}, tr.Seed)
			if err != nil {
				return nil, err
			}
			st.Inst = core.NewInstrumentation()
			st.BFS([]int32{0}, tr.MaxDist)
			return harness.Metrics{
				"maxXi":      float64(st.Inst.MaxXi(0)),
				"maxSpecial": float64(st.Inst.MaxSpecial(0)),
			}, nil
		},
	}
	inst := sc.Instances[0]
	var last harness.Result
	for i := 0; i < b.N; i++ {
		last = execTrial(b, ctx, sc, inst, i)
	}
	b.ReportMetric(last.Metrics["maxXi"], "maxXi")
	b.ReportMetric(last.Metrics["maxSpecial"], "maxSpecial")
}

// BenchmarkE10GoodPairs measures the Theorem 5.1 probing protocols.
func BenchmarkE10GoodPairs(b *testing.B) {
	ctx := harness.NewContext()
	inst := harness.Instance{Family: "complete-e", N: 64}
	g := graph.CompleteMinusEdge(inst.N, 1, 2)
	b.Run("roundrobin", func(b *testing.B) {
		sc := &harness.Scenario{
			Name:      "bench-E10-rr",
			Instances: []harness.Instance{inst},
			Run: func(harness.Trial) (harness.Metrics, error) {
				res := lowerbound.RoundRobinProbe(g)
				if !res.Detected {
					return nil, fmt.Errorf("missed edge")
				}
				return harness.Metrics{"maxEnergy": float64(res.MaxEnergy)}, nil
			},
		}
		var last harness.Result
		for i := 0; i < b.N; i++ {
			last = execTrial(b, ctx, sc, inst, i)
		}
		b.ReportMetric(last.Metrics["maxEnergy"], "slots/vtx")
	})
	b.Run("budget=8", func(b *testing.B) {
		sc := &harness.Scenario{
			Name:      "bench-E10-budget",
			Instances: []harness.Instance{inst},
			Run: func(tr harness.Trial) (harness.Metrics, error) {
				lowerbound.BudgetedProbe(g, 8, tr.Seed)
				return harness.Metrics{}, nil
			},
		}
		for i := 0; i < b.N; i++ {
			execTrial(b, ctx, sc, inst, i)
		}
	})
}

// BenchmarkE11Disjointness measures the Theorem 5.2 construction + check.
func BenchmarkE11Disjointness(b *testing.B) {
	ctx := harness.NewContext()
	var evens, odds []uint64
	for x := 0; x < 128; x++ {
		if x%2 == 0 {
			evens = append(evens, uint64(x))
		} else {
			odds = append(odds, uint64(x))
		}
	}
	sc := &harness.Scenario{
		Name:      "bench-E11",
		Instances: []harness.Instance{{Family: "setdisj", N: 128, MaxDist: 7}},
		Run: func(tr harness.Trial) (harness.Metrics, error) {
			d := lowerbound.BuildDisjointness(evens, odds, tr.MaxDist)
			if graph.Diameter(d.G) != 2 {
				return nil, fmt.Errorf("diameter property violated")
			}
			return harness.Metrics{}, nil
		},
	}
	inst := sc.Instances[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		execTrial(b, ctx, sc, inst, i)
	}
}

// BenchmarkE12TwoApprox measures Theorem 5.3's 2-approximation.
func BenchmarkE12TwoApprox(b *testing.B) {
	ctx := harness.NewContext()
	p := core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	sc := &harness.Scenario{
		Name:      "bench-E12",
		Instances: []harness.Instance{{Family: "cycle", N: 128}},
		Algo:      harness.AlgoDiam2,
		Params:    &p,
	}
	inst := sc.Instances[0]
	var last harness.Result
	for i := 0; i < b.N; i++ {
		last = execTrial(b, ctx, sc, inst, i)
	}
	b.ReportMetric(last.Metrics["estimate"], "estimate")
	b.ReportMetric(last.Metrics["maxLB"], "LBenergy/vtx")
}

// BenchmarkE13ThreeHalves measures Theorem 5.4 (radio at n=48, mirror at
// n=1024).
func BenchmarkE13ThreeHalves(b *testing.B) {
	ctx := harness.NewContext()
	b.Run("radio/n=48", func(b *testing.B) {
		p := core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
		sc := &harness.Scenario{
			Name:      "bench-E13-radio",
			Instances: []harness.Instance{{Family: "path", N: 48}},
			Algo:      harness.AlgoDiam32,
			Params:    &p,
		}
		inst := sc.Instances[0]
		for i := 0; i < b.N; i++ {
			execTrial(b, ctx, sc, inst, i)
		}
	})
	b.Run("mirror/n=1024", func(b *testing.B) {
		g := graph.Cycle(1024)
		sc := &harness.Scenario{
			Name:      "bench-E13-mirror",
			Instances: []harness.Instance{{Family: "cycle", N: g.N()}},
			Run: func(tr harness.Trial) (harness.Metrics, error) {
				res := diameter.MirrorThreeHalves(g, tr.Seed)
				if res.Estimate > 512 || res.Estimate < 341 {
					return nil, fmt.Errorf("estimate %d out of band", res.Estimate)
				}
				return harness.Metrics{}, nil
			},
		}
		inst := sc.Instances[0]
		for i := 0; i < b.N; i++ {
			execTrial(b, ctx, sc, inst, i)
		}
	})
}

// BenchmarkE14LabelCast measures the duty-cycled dissemination trade-off
// through the harness's built-in poll workload.
func BenchmarkE14LabelCast(b *testing.B) {
	ctx := harness.NewContext()
	for _, period := range []int{1, 8} {
		sc := &harness.Scenario{
			Name:      fmt.Sprintf("bench-E14-P%d", period),
			Instances: []harness.Instance{{Family: "geometric", N: 256}},
			Algo:      harness.AlgoPoll,
			Period:    period,
		}
		inst := sc.Instances[0]
		b.Run(fmt.Sprintf("P=%d", period), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = execTrial(b, ctx, sc, inst, i)
				if last.Metrics["delivered"] != 1 {
					b.Fatal("not delivered")
				}
			}
			b.ReportMetric(last.Metrics["maxLB"], "LBenergy/vtx")
		})
	}
}

// BenchmarkAblationDepth sweeps the recursion depth at fixed n — each level
// multiplies overhead by polylog factors while dividing the effective
// radius, so at simulable n the energy rises with depth even though the
// asymptotics eventually reverse it.
func BenchmarkAblationDepth(b *testing.B) {
	ctx := harness.NewContext()
	for _, depth := range []int{0, 1, 2} {
		p := core.Params{InvBeta: 8, Depth: depth, W: 21, Alpha: 4}
		sc := &harness.Scenario{
			Name:      fmt.Sprintf("bench-ablation-depth%d", depth),
			Instances: []harness.Instance{{Family: "cycle", N: 128, MaxDist: 64}},
			Algo:      harness.AlgoRecursive,
			Params:    &p,
		}
		inst := sc.Instances[0]
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = execTrial(b, ctx, sc, inst, i)
				requireExact(b, last)
			}
			b.ReportMetric(last.Metrics["maxLB"], "LBenergy/vtx")
		})
	}
}

// BenchmarkAblationBeta sweeps 1/β at one clustering level: small β means
// few, large clusters (cheap stages, expensive casts); large β the reverse.
func BenchmarkAblationBeta(b *testing.B) {
	ctx := harness.NewContext()
	for _, invB := range []int{2, 4, 8, 16, 32} {
		p := core.Params{InvBeta: invB, Depth: 1, W: 24, Alpha: 4}
		sc := &harness.Scenario{
			Name:      fmt.Sprintf("bench-ablation-beta%d", invB),
			Instances: []harness.Instance{{Family: "cycle", N: 256, MaxDist: 128}},
			Algo:      harness.AlgoRecursive,
			Params:    &p,
		}
		inst := sc.Instances[0]
		b.Run(fmt.Sprintf("invBeta=%d", invB), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = execTrial(b, ctx, sc, inst, i)
				requireExact(b, last)
			}
			b.ReportMetric(last.Metrics["maxLB"], "LBenergy/vtx")
		})
	}
}

// BenchmarkEngineStep measures the physics core itself: the engine is built
// once and each trial is a single slot step.
func BenchmarkEngineStep(b *testing.B) {
	g := graph.Grid(64, 64)
	eng := radio.NewEngine(g)
	tx := []radio.TX{{ID: 2000, Msg: radio.Msg{A: 1}}}
	listeners := []int32{2001, 2064, 1936}
	out := make([]radio.RX, len(listeners))
	sc := &harness.Scenario{
		Name:      "bench-engine-step",
		Instances: []harness.Instance{{Family: "grid", N: g.N()}},
		Run: func(harness.Trial) (harness.Metrics, error) {
			eng.Step(tx, listeners, out)
			return harness.Metrics{}, nil
		},
	}
	// The step is ~µs-scale and seed-independent: precompute the trial so
	// each iteration times Execute + Step, not seed derivation.
	tr := harness.TrialFor(sc, sc.Instances[0], 0, 1)
	ctx := harness.NewContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := harness.ExecuteCtx(ctx, sc, tr); res.Err != "" {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkScaleStep measures one physical slot in the million-vertex
// regime the scale suite exercises: a 1024-vertex frontier transmits while
// every other vertex listens on a random tree with n = 2²⁰. Sub-benchmarks
// sweep the shard count of the same step; results are byte-identical at
// every count (see radio.StepParallel), so the spread is pure wall-clock.
// On a single-core runner the shards > 1 rows only show the fan-out
// overhead; the speedup scales with GOMAXPROCS.
func BenchmarkScaleStep(b *testing.B) {
	n := 1 << 20
	g := graph.RandomTree(n, rng.New(1))
	isTx := make([]bool, n)
	var tx []radio.TX
	for i := 0; i < 1024; i++ {
		v := int32(i * (n / 1024))
		isTx[v] = true
		tx = append(tx, radio.TX{ID: v, Msg: radio.Msg{Kind: 1, A: uint64(v)}})
	}
	var listeners []int32
	for v := 0; v < n; v++ {
		if !isTx[v] {
			listeners = append(listeners, int32(v))
		}
	}
	out := make([]radio.RX, len(listeners))
	for _, shards := range []int{1, 2, 4, 8} {
		eng := radio.NewEngine(g, radio.WithShards(shards))
		b.Run(fmt.Sprintf("n=1M/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.StepParallel(tx, listeners, out)
			}
		})
	}
}

// BenchmarkDenseStep maps the dense-vs-CSR crossover that Step's
// auto-selection threshold encodes: one physical slot on a million-vertex
// random tree at activity densities from ~1/64 of the network awake to all
// of it, on the CSR kernel (dense disabled) and the packed-bitmap kernel
// (dense forced), sequentially and sharded. Every cell computes identical
// bytes — the spread is pure wall-clock, and where the dense rows cross
// under the CSR rows is the data behind the Σdeg(tx) ≥ n/128 default rule
// (see radio.WithDenseMin; BenchmarkScaleStep covers the complementary
// listener-heavy pattern where CSR stays ahead). Densities are labeled by
// the divisor: den=64 means one vertex in 64 is awake; among awake
// vertices every fourth transmits and the rest listen.
func BenchmarkDenseStep(b *testing.B) {
	n := 1 << 20
	g := graph.RandomTree(n, rng.New(1))
	for _, den := range []int{64, 16, 4, 1} {
		var tx []radio.TX
		var listeners []int32
		for v := 0; v < n; v += den {
			if (v/den)%4 == 0 {
				tx = append(tx, radio.TX{ID: int32(v), Msg: radio.Msg{Kind: 1, A: uint64(v)}})
			} else {
				listeners = append(listeners, int32(v))
			}
		}
		out := make([]radio.RX, len(listeners))
		for _, kernel := range []struct {
			name string
			min  int
		}{{"csr", -1}, {"dense", 1}} {
			for _, shards := range []int{1, 4} {
				eng := radio.NewEngine(g, radio.WithShards(shards), radio.WithDenseMin(kernel.min))
				b.Run(fmt.Sprintf("n=1M/den=%d/%s/shards=%d", den, kernel.name, shards), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						eng.StepParallel(tx, listeners, out)
					}
				})
			}
		}
	}
}

// BenchmarkScaleDecayTrial measures one full scale-suite trial — seeded
// graph build plus Decay BFS on the physical channel at n = 2²⁰ — through
// the pooled worker context, sequentially and with the engine sharded
// across all cores (the Runner's big-instance scheduling policy).
func BenchmarkScaleDecayTrial(b *testing.B) {
	sc := &harness.Scenario{
		Name:      "bench-scale-decay",
		Algo:      harness.AlgoDecay,
		Passes:    2,
		Instances: []harness.Instance{{Family: "tree", N: 1 << 20, MaxDist: 4}},
	}
	inst := sc.Instances[0]
	shardCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		shardCounts = append(shardCounts, p)
	}
	for _, shards := range shardCounts {
		ctx := harness.NewContext()
		ctx.SetShards(shards)
		b.Run(fmt.Sprintf("n=1M/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				execTrial(b, ctx, sc, inst, i)
			}
		})
	}
}

// BenchmarkSeededGraphBuild measures the per-trial topology rebuild of a
// seeded-family sweep at scale: the pooled worker-context path (one builder
// Reset per trial) against a cold build per trial.
func BenchmarkSeededGraphBuild(b *testing.B) {
	n := 1 << 20
	b.Run("pooled", func(b *testing.B) {
		ctx := harness.NewContext()
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Graph("tree", n, uint64(i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repro.NewGraph("tree", n, uint64(i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineStepRaw measures one bare physics step with allocation
// tracking: the committed baseline pins allocs/op at zero, the paper-level
// guarantee that simulation cost is activity-proportional, not GC-bound.
func BenchmarkEngineStepRaw(b *testing.B) {
	g := graph.Grid(64, 64)
	eng := radio.NewEngine(g)
	tx := []radio.TX{{ID: 2000, Msg: radio.Msg{A: 1}}}
	listeners := []int32{2001, 2064, 1936}
	out := make([]radio.RX, len(listeners))
	eng.Step(tx, listeners, out) // warm scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(tx, listeners, out)
	}
}

// BenchmarkVNetVirtualLBRaw measures one simulated Local-Broadcast on G*
// over warmed VNet scratch; the baseline pins allocs/op at zero.
func BenchmarkVNetVirtualLBRaw(b *testing.B) {
	g, _ := graph.Named("grid", 400, 1)
	base := lbnet.NewUnitNet(g, 0, 1)
	cl := cluster.Build(base, cluster.DefaultConfig(g.N(), 4), 1)
	vn := vnet.New(base, cl)
	if vn.N() < 2 {
		b.Skip("degenerate clustering")
	}
	senders := []radio.TX{{ID: 0, Msg: radio.Msg{A: 1}}}
	receivers := []int32{1}
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	vn.LocalBroadcast(senders, receivers, got, ok) // warm scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vn.LocalBroadcast(senders, receivers, got, ok)
	}
}

// BenchmarkDecayLocalBroadcastRaw measures one physical-channel Decay
// Local-Broadcast on warmed scratch; the baseline pins allocs/op at zero.
func BenchmarkDecayLocalBroadcastRaw(b *testing.B) {
	g := graph.Star(129)
	eng := radio.NewEngine(g)
	p := decay.ParamsFor(g.N(), 8)
	senders := make([]radio.TX, 0, 128)
	for v := 1; v <= 128; v++ {
		senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
	}
	receivers := []int32{0}
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	var s decay.Scratch
	s.LocalBroadcast(eng, p, senders, receivers, rng.Derive(1, 0), got, ok) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LocalBroadcast(eng, p, senders, receivers, rng.Derive(1, uint64(i+1)), got, ok)
	}
}

// BenchmarkVerifyGradient measures the polylog labeling verifier.
func BenchmarkVerifyGradient(b *testing.B) {
	ctx := harness.NewContext()
	g := graph.Cycle(512)
	labels := graph.BFS(g, 0)
	sc := &harness.Scenario{
		Name:      "bench-verify-gradient",
		Instances: []harness.Instance{{Family: "cycle", N: 512}},
		Run: func(tr harness.Trial) (harness.Metrics, error) {
			net := lbnet.NewUnitNet(g, 0, tr.Seed)
			if viol := core.VerifyGradient(net, labels, tr.N).Violations; viol != 0 {
				return nil, fmt.Errorf("%d violations", viol)
			}
			return harness.Metrics{}, nil
		},
	}
	inst := sc.Instances[0]
	for i := 0; i < b.N; i++ {
		execTrial(b, ctx, sc, inst, i)
	}
}
