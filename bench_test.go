package repro

// Benchmarks: one per experiment table of DESIGN.md §5. Each reports, beyond
// wall time, the paper's own cost metrics via b.ReportMetric — energy in
// Local-Broadcast units (LB/vertex) and time in LB calls — so `go test
// -bench` regenerates the quantitative shape of every claim.

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/decay"
	"repro/internal/diameter"
	"repro/internal/graph"
	"repro/internal/labelcast"
	"repro/internal/lbnet"
	"repro/internal/lowerbound"
	"repro/internal/radio"
	"repro/internal/rng"
	"repro/internal/vnet"
)

// BenchmarkE1RecursiveBFS measures Theorem 4.1's algorithm end to end with
// fixed machinery (β = 1/8, one clustering level) so the scaling across n is
// apples-to-apples; BenchmarkAblationDepth/Beta sweep the design choices.
func BenchmarkE1RecursiveBFS(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		g := graph.Cycle(n)
		d := n / 2
		p := core.Params{InvBeta: 8, Depth: 1, W: 24, Alpha: 4}
		b.Run(fmt.Sprintf("cycle/n=%d", n), func(b *testing.B) {
			var maxLB, lbTime int64
			for i := 0; i < b.N; i++ {
				base := lbnet.NewUnitNet(g, 0, uint64(i))
				st, err := core.BuildStack(base, p, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				dist := st.BFS([]int32{0}, d)
				if bad := core.VerifyAgainstReference(g, []int32{0}, dist, d); bad != 0 {
					b.Fatalf("%d mislabeled", bad)
				}
				maxLB, lbTime = lbnet.MaxLBEnergy(base), base.LBTime()
			}
			b.ReportMetric(float64(maxLB), "LBenergy/vtx")
			b.ReportMetric(float64(lbTime), "LBtime")
		})
	}
}

// BenchmarkE1DecayBFS is the Θ(D log² n)-energy baseline on real radio slots.
func BenchmarkE1DecayBFS(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		g := graph.Cycle(n)
		p := decay.ParamsFor(n, 8)
		b.Run(fmt.Sprintf("cycle/n=%d", n), func(b *testing.B) {
			var maxE int64
			for i := 0; i < b.N; i++ {
				eng := radio.NewEngine(g)
				res := decay.BFS(eng, p, []int32{0}, n, uint64(i))
				if bad := decay.ReferenceAgainst(g, []int32{0}, res.Dist, n); bad != 0 {
					b.Fatalf("%d mislabeled", bad)
				}
				maxE = eng.MaxEnergy()
			}
			b.ReportMetric(float64(maxE), "slots/vtx")
		})
	}
}

// BenchmarkE2LocalBroadcast measures Lemma 2.4 under heavy contention.
func BenchmarkE2LocalBroadcast(b *testing.B) {
	for _, deg := range []int{16, 128} {
		g := graph.Star(deg + 1)
		p := decay.ParamsFor(deg+1, 8)
		senders := make([]radio.TX, 0, deg)
		for v := 1; v <= deg; v++ {
			senders = append(senders, radio.TX{ID: int32(v), Msg: radio.Msg{A: uint64(v)}})
		}
		got := make([]radio.Msg, 1)
		ok := make([]bool, 1)
		b.Run(fmt.Sprintf("deg=%d", deg), func(b *testing.B) {
			miss := 0
			for i := 0; i < b.N; i++ {
				eng := radio.NewEngine(g)
				decay.LocalBroadcast(eng, p, senders, []int32{0}, uint64(i), got, ok)
				if !ok[0] {
					miss++
				}
			}
			b.ReportMetric(float64(miss)/float64(b.N), "failrate")
		})
	}
}

// BenchmarkE3Cluster measures Lemma 2.5's construction.
func BenchmarkE3Cluster(b *testing.B) {
	for _, n := range []int{256, 1024} {
		g, _ := graph.Named("grid", n, 1)
		cfg := cluster.DefaultConfig(g.N(), 8)
		b.Run(fmt.Sprintf("grid/n=%d", n), func(b *testing.B) {
			var radius int32
			for i := 0; i < b.N; i++ {
				base := lbnet.NewUnitNet(g, 0, uint64(i))
				cl := cluster.Build(base, cfg, uint64(i))
				radius = cl.Radius()
			}
			b.ReportMetric(float64(radius), "radius")
			b.ReportMetric(float64(cfg.TMax), "TMax")
		})
	}
}

// BenchmarkE4DistanceProxy measures the Lemma 2.2/2.3 machinery (ideal MPX
// plus cluster-graph BFS).
func BenchmarkE4DistanceProxy(b *testing.B) {
	g := graph.Path(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ideal := cluster.BuildIdeal(g, 8, uint64(i))
		cg := cluster.ClusterGraphOf(g, ideal.ClusterOf, len(ideal.Center))
		graph.BFS(cg, ideal.ClusterOf[0])
	}
}

// BenchmarkE5Casts measures one full Downcast (Lemma 3.1).
func BenchmarkE5Casts(b *testing.B) {
	g, _ := graph.Named("grid", 400, 1)
	base := lbnet.NewUnitNet(g, 0, 1)
	cl := cluster.Build(base, cluster.DefaultConfig(g.N(), 4), 1)
	vn := vnet.New(base, cl)
	nc := vn.N()
	part := make([]bool, nc)
	has := make([]bool, nc)
	msgs := make([]radio.Msg, nc)
	for c := range part {
		part[c], has[c] = true, true
	}
	memberGot := make([]radio.Msg, g.N())
	memberOk := make([]bool, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vn.Downcast(part, has, msgs, memberGot, memberOk)
	}
	b.ReportMetric(float64(vn.CastLBs()), "parentLBs")
}

// BenchmarkE5VirtualLB measures one simulated Local-Broadcast on G*
// (Lemma 3.2).
func BenchmarkE5VirtualLB(b *testing.B) {
	g, _ := graph.Named("grid", 400, 1)
	base := lbnet.NewUnitNet(g, 0, 1)
	cl := cluster.Build(base, cluster.DefaultConfig(g.N(), 4), 1)
	vn := vnet.New(base, cl)
	if vn.N() < 2 {
		b.Skip("degenerate clustering")
	}
	senders := []radio.TX{{ID: 0, Msg: radio.Msg{A: 1}}}
	receivers := []int32{1}
	got := make([]radio.Msg, 1)
	ok := make([]bool, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vn.LocalBroadcast(senders, receivers, got, ok)
	}
	b.ReportMetric(float64(vn.VLBCost()), "parentLBs")
}

// BenchmarkE7Claims measures the instrumented Recursive-BFS used for the
// Claim 1/2 counters.
func BenchmarkE7Claims(b *testing.B) {
	g := graph.Cycle(256)
	p := core.Params{InvBeta: 8, Depth: 1, W: 24, Alpha: 4}
	var xi, sp int64
	for i := 0; i < b.N; i++ {
		base := lbnet.NewUnitNet(g, 0, uint64(i))
		st, _ := core.BuildStack(base, p, uint64(i))
		st.Inst = core.NewInstrumentation()
		st.BFS([]int32{0}, 128)
		xi, sp = st.Inst.MaxXi(0), st.Inst.MaxSpecial(0)
	}
	b.ReportMetric(float64(xi), "maxXi")
	b.ReportMetric(float64(sp), "maxSpecial")
}

// BenchmarkE10GoodPairs measures the Theorem 5.1 probing protocols.
func BenchmarkE10GoodPairs(b *testing.B) {
	g := graph.CompleteMinusEdge(64, 1, 2)
	b.Run("roundrobin", func(b *testing.B) {
		var e int64
		for i := 0; i < b.N; i++ {
			res := lowerbound.RoundRobinProbe(g)
			if !res.Detected {
				b.Fatal("missed edge")
			}
			e = res.MaxEnergy
		}
		b.ReportMetric(float64(e), "slots/vtx")
	})
	b.Run("budget=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lowerbound.BudgetedProbe(g, 8, uint64(i))
		}
	})
}

// BenchmarkE11Disjointness measures the Theorem 5.2 construction + check.
func BenchmarkE11Disjointness(b *testing.B) {
	var evens, odds []uint64
	for x := 0; x < 128; x++ {
		if x%2 == 0 {
			evens = append(evens, uint64(x))
		} else {
			odds = append(odds, uint64(x))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := lowerbound.BuildDisjointness(evens, odds, 7)
		if graph.Diameter(d.G) != 2 {
			b.Fatal("diameter property violated")
		}
	}
}

// BenchmarkE12TwoApprox measures Theorem 5.3's 2-approximation.
func BenchmarkE12TwoApprox(b *testing.B) {
	g := graph.Cycle(128)
	p := core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
	var est int32
	var e int64
	for i := 0; i < b.N; i++ {
		base := lbnet.NewUnitNet(g, 0, uint64(i))
		st, _ := core.BuildStack(base, p, uint64(i))
		res := diameter.TwoApprox(st, diameter.Designated(), 128)
		est, e = res.Estimate, lbnet.MaxLBEnergy(base)
	}
	b.ReportMetric(float64(est), "estimate")
	b.ReportMetric(float64(e), "LBenergy/vtx")
}

// BenchmarkE13ThreeHalves measures Theorem 5.4 (radio at n=48, mirror at
// n=1024).
func BenchmarkE13ThreeHalves(b *testing.B) {
	b.Run("radio/n=48", func(b *testing.B) {
		g := graph.Path(48)
		p := core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
		for i := 0; i < b.N; i++ {
			base := lbnet.NewUnitNet(g, 0, uint64(i))
			st, _ := core.BuildStack(base, p, uint64(i))
			diameter.ThreeHalvesApprox(st, diameter.Designated(), 48, uint64(i))
		}
	})
	b.Run("mirror/n=1024", func(b *testing.B) {
		g := graph.Cycle(1024)
		for i := 0; i < b.N; i++ {
			res := diameter.MirrorThreeHalves(g, uint64(i))
			if res.Estimate > 512 || res.Estimate < 341 {
				b.Fatalf("estimate %d out of band", res.Estimate)
			}
		}
	})
}

// BenchmarkE14LabelCast measures the duty-cycled dissemination trade-off.
func BenchmarkE14LabelCast(b *testing.B) {
	g, _ := graph.Named("geometric", 256, 1)
	labels := graph.BFS(g, 0)
	for _, period := range []int{1, 8} {
		b.Run(fmt.Sprintf("P=%d", period), func(b *testing.B) {
			var e int64
			for i := 0; i < b.N; i++ {
				net := lbnet.NewUnitNet(g, 0, uint64(i))
				res := labelcast.Broadcast(net, labels, period, int64(g.N())*int64(period+2)*4)
				if !res.DeliveredAll {
					b.Fatal("not delivered")
				}
				e = lbnet.MaxLBEnergy(net)
			}
			b.ReportMetric(float64(e), "LBenergy/vtx")
		})
	}
}

// BenchmarkAblationDepth sweeps the recursion depth at fixed n — the design
// choice DESIGN.md §3 calls out: each level multiplies overhead by polylog
// factors while dividing the effective radius, so at simulable n the energy
// rises with depth even though the asymptotics eventually reverse it.
func BenchmarkAblationDepth(b *testing.B) {
	g := graph.Cycle(128)
	for _, depth := range []int{0, 1, 2} {
		p := core.Params{InvBeta: 8, Depth: depth, W: 21, Alpha: 4}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var e int64
			for i := 0; i < b.N; i++ {
				base := lbnet.NewUnitNet(g, 0, uint64(i))
				st, err := core.BuildStack(base, p, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				dist := st.BFS([]int32{0}, 64)
				if bad := core.VerifyAgainstReference(g, []int32{0}, dist, 64); bad != 0 {
					b.Fatalf("%d mislabeled", bad)
				}
				e = lbnet.MaxLBEnergy(base)
			}
			b.ReportMetric(float64(e), "LBenergy/vtx")
		})
	}
}

// BenchmarkAblationBeta sweeps 1/β at one clustering level: small β means
// few, large clusters (cheap stages, expensive casts); large β the reverse.
func BenchmarkAblationBeta(b *testing.B) {
	g := graph.Cycle(256)
	for _, invB := range []int{2, 4, 8, 16, 32} {
		p := core.Params{InvBeta: invB, Depth: 1, W: 24, Alpha: 4}
		b.Run(fmt.Sprintf("invBeta=%d", invB), func(b *testing.B) {
			var e int64
			for i := 0; i < b.N; i++ {
				base := lbnet.NewUnitNet(g, 0, uint64(i))
				st, err := core.BuildStack(base, p, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				dist := st.BFS([]int32{0}, 128)
				if bad := core.VerifyAgainstReference(g, []int32{0}, dist, 128); bad != 0 {
					b.Fatalf("%d mislabeled", bad)
				}
				e = lbnet.MaxLBEnergy(base)
			}
			b.ReportMetric(float64(e), "LBenergy/vtx")
		})
	}
}

// BenchmarkEngineStep measures the physics core itself.
func BenchmarkEngineStep(b *testing.B) {
	g := graph.Grid(64, 64)
	eng := radio.NewEngine(g)
	tx := []radio.TX{{ID: 2000, Msg: radio.Msg{A: 1}}}
	listeners := []int32{2001, 2064, 1936}
	out := make([]radio.RX, len(listeners))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(tx, listeners, out)
	}
}

// BenchmarkVerifyGradient measures the polylog labeling verifier.
func BenchmarkVerifyGradient(b *testing.B) {
	g := graph.Cycle(512)
	labels := graph.BFS(g, 0)
	var viol int
	for i := 0; i < b.N; i++ {
		net := lbnet.NewUnitNet(g, 0, rng.Derive(7, uint64(i)))
		viol = core.VerifyGradient(net, labels, 512).Violations
	}
	if viol != 0 {
		b.Fatalf("%d violations", viol)
	}
}
