package scenarios

import (
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/spec"
)

// TestLibraryValidatesAndCompiles parses, validates, and compiles every
// checked-in spec file in both full and quick modes, with stub custom
// workloads standing in for the instrumented code cmd/experiments attaches.
// This is what lets cmd/experiments treat a spec failure as a build defect.
func TestLibraryValidatesAndCompiles(t *testing.T) {
	names := Names()
	if len(names) < 15 {
		t.Fatalf("expected the full library, found only %d specs: %v", len(names), names)
	}
	for _, name := range names {
		f, err := Load(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if f.Name != strings.TrimSuffix(name, ".json") {
			t.Errorf("%s: spec name %q should match its file name", name, f.Name)
		}
		if f.Doc == "" {
			t.Errorf("%s: missing doc line", name)
		}
		stubs := map[string]spec.CustomFunc{}
		for i := range f.Scenarios {
			if c := f.Scenarios[i].Custom; c != "" {
				stubs[c] = func(*spec.Scenario) (harness.TrialCtxFunc, error) {
					return func(*harness.Context, harness.Trial) (harness.Metrics, error) {
						return harness.Metrics{"stub": 1}, nil
					}, nil
				}
			}
		}
		for _, quick := range []bool{false, true} {
			scs, err := spec.Compile(f, spec.Options{Quick: quick, Custom: stubs})
			if err != nil {
				t.Errorf("%s (quick=%v): %v", name, quick, err)
				continue
			}
			for _, sc := range scs {
				if len(sc.Instances) == 0 {
					t.Errorf("%s (quick=%v): scenario %s compiled to zero instances", name, quick, sc.Name)
				}
			}
		}
	}
}

// TestSmokeSpecRunsEverywhere executes the CI smoke spec at two worker
// counts and requires identical results — the embedded-library counterpart
// of the CLI smoke step in CI.
func TestSmokeSpecRunsEverywhere(t *testing.T) {
	f, err := Load("smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	var first []harness.Result
	for _, workers := range []int{1, 4} {
		out, err := spec.ExecuteFile(f, workers, 0, spec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if n := out.Errors(); n != 0 {
			t.Fatalf("workers=%d: %d trials failed", workers, n)
		}
		if first == nil {
			first = out.Results
			continue
		}
		if len(out.Results) != len(first) {
			t.Fatalf("trial count changed with worker count")
		}
		for i := range first {
			if first[i].Seed != out.Results[i].Seed {
				t.Fatalf("trial %d seed changed with worker count", i)
			}
		}
	}
}
