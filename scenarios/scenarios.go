// Package scenarios embeds the checked-in experiment-spec library: one JSON
// file per experiment of the paper's grid (E1–E14, minus the trial-free
// Z-sequence printout E6) plus combinations the Go drivers never exposed
// (Decay on seeded families, the diameter approximations across the full
// generator suite, unit-vs-physical cost ablations, and the tiny CI smoke
// spec). The files are the single source of truth for the experiment grids:
// cmd/experiments compiles its tables from them (attaching its instrumented
// custom workloads through spec.Options.Custom), and every registry-only
// spec also runs standalone via `radiobfs run scenarios/<name>.json`.
//
// See internal/spec for the file format and README.md for a worked example.
package scenarios

import (
	"embed"
	"sort"

	"repro/internal/spec"
)

// FS holds every checked-in spec file, embedded so drivers and tests run
// from any working directory.
//
//go:embed *.json
var FS embed.FS

// Names lists the embedded spec files, sorted.
func Names() []string {
	entries, err := FS.ReadDir(".")
	if err != nil {
		panic(err) // embed.FS.ReadDir(".") cannot fail
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// Load parses and validates one embedded spec file.
func Load(name string) (*spec.File, error) {
	f, err := spec.ParseFS(FS, name)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
