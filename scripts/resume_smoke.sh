#!/usr/bin/env bash
# resume_smoke.sh — end-to-end smoke of durable checkpointing and crash
# recovery, run by CI and `make resume-check`.
#
#   1. `radiobfs run` executes the quick scale suite in a single process →
#      reference bytes (stdout and artifact tree).
#   2. A crash loop runs the same suite with -checkpoint and coordkill
#      chaos: the coordinator SIGKILLs itself after each freshly
#      checkpointed trial — the hardest crash there is, no deferred
#      cleanup — and each restart must resume from the journal instead of
#      starting over.
#   3. The run that finally completes must produce stdout and artifacts
#      byte-identical to the single-process run: resumed progress replays
#      from the journal, it is never recomputed into different bytes.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d /tmp/radiobfs_resume_smoke.XXXXXX)"
bin="$work/radiobfs"
trap 'rm -rf "$work"' EXIT

go build -o "$bin" ./cmd/radiobfs

# 1. Reference run: single process, one worker.
"$bin" run -quick -out "$work/base" -workers 1 \
    scenarios/scale_suite.json > "$work/base.txt"

# 2. Crash loop: every attempt is SIGKILLed after its first fresh checkpoint
# append, so each one advances the journal by exactly 1 trial; the loop
# converges when none remain.
crashes=0
final_log=""
for i in $(seq 1 80); do
    final_log="$work/run$i.log"
    if "$bin" run -quick -out "$work/resumed" -workers 3 \
        -checkpoint "$work/ckpt" -chaos "seed=1,coordkill=1" \
        scenarios/scale_suite.json > "$work/resumed.txt" 2> "$final_log"; then
        break
    fi
    crashes=$((crashes + 1))
    if [ "$i" -eq 80 ]; then
        echo "crash loop never converged after $crashes coordinator kills:"
        cat "$final_log"
        exit 1
    fi
done
if [ "$crashes" -lt 3 ]; then
    echo "expected at least 3 coordinator SIGKILLs before completion, got $crashes"
    exit 1
fi

# The completing run must have resumed journaled work, not restarted.
grep -q "checkpoint.*resumed" "$final_log" \
    || { echo "final run's log missing the resume line:"; cat "$final_log"; exit 1; }
# And at least one crash must have announced itself.
grep -q "coordkill firing" "$work/run1.log" \
    || { echo "first run's log missing the coordkill line:"; cat "$work/run1.log"; exit 1; }

# 3. Byte-identity: a run assembled across $crashes crashes and resumes is
# indistinguishable from one that never crashed.
diff "$work/base.txt" "$work/resumed.txt"
diff -r "$work/base" "$work/resumed"

echo "resume-smoke: run survived $crashes coordinator SIGKILLs and finished byte-identical to the single-process run"
