#!/usr/bin/env bash
# remote_smoke.sh — end-to-end smoke of the TCP remote-worker transport, run
# by CI and `make remote-check`.
#
# One binary plays every role (version negotiation requires identical
# builds), all over loopback:
#
#   1. `radiobfs run` executes the quick scale suite in a single process →
#      reference bytes (stdout and artifact tree).
#   2. A coordinator starts with -listen 127.0.0.1:0 -token, plus seeded
#      disconnect+delay chaos; -addrfile reports the bound port.
#   3. A worker with the WRONG token must exit non-zero with the typed
#      badToken rejection — and must not perturb the run.
#   4. Three workers with the right token serve the sweep to completion.
#   5. The coordinator's stdout and artifact tree must be byte-identical to
#      the single-process run (`diff` + `diff -r`).
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d /tmp/radiobfs_remote_smoke.XXXXXX)"
bin="$work/radiobfs"
coord_pid=""
cleanup() {
    [ -n "$coord_pid" ] && kill "$coord_pid" 2>/dev/null || true
    [ -n "$coord_pid" ] && wait "$coord_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/radiobfs

# 1. Reference run: single process, one worker.
"$bin" run -quick -out "$work/base" -workers 1 \
    scenarios/scale_suite.json > "$work/base.txt"

# 2. Coordinator: listen for remote workers, with seeded mid-lease
# disconnects and per-trial link latency.
"$bin" run -quick -out "$work/remote" -workers 3 \
    -listen 127.0.0.1:0 -token s3cret -addrfile "$work/addr" \
    -connect-wait 120s -chaos "seed=1,disconnect=2,delay=3" \
    scenarios/scale_suite.json > "$work/remote.txt" 2> "$work/coord.log" &
coord_pid=$!
for _ in $(seq 1 100); do
    [ -s "$work/addr" ] && break
    kill -0 "$coord_pid" 2>/dev/null || { cat "$work/coord.log"; echo "coordinator exited early"; exit 1; }
    sleep 0.1
done
[ -s "$work/addr" ] || { echo "coordinator never wrote $work/addr"; exit 1; }
addr="$(cat "$work/addr")"

# 3. Wrong token: rejected with the typed badToken error, exit non-zero.
if "$bin" work -connect "$addr" -token wrong-token 2> "$work/evil.log"; then
    echo "wrong-token worker exited zero; rejection did not happen"
    exit 1
fi
grep -q "handshake rejected (badToken)" "$work/evil.log" \
    || { echo "wrong-token worker missing the typed rejection:"; cat "$work/evil.log"; exit 1; }

# 4. Three authenticated workers drain the sweep.
for i in 1 2 3; do
    "$bin" work -connect "$addr" -token s3cret 2> "$work/worker$i.log" &
done
wait "$coord_pid"
status=$?
coord_pid=""
[ "$status" -eq 0 ] || { echo "coordinator failed ($status):"; cat "$work/coord.log"; exit 1; }

# The rejection must be on the coordinator's record too.
grep -q "rejected worker from" "$work/coord.log" \
    || { echo "coordinator log missing the rejection line:"; cat "$work/coord.log"; exit 1; }
grep -q "worker authenticated from" "$work/coord.log" \
    || { echo "coordinator log missing authentication lines:"; cat "$work/coord.log"; exit 1; }

# 5. Byte-identity across the transport, chaos and all.
diff "$work/base.txt" "$work/remote.txt"
diff -r "$work/base" "$work/remote"

echo "remote-smoke: TCP workers byte-identical to single-process run; wrong token rejected without affecting the sweep"
