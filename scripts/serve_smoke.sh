#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the serving layer, run by CI and
# `make serve-check`.
#
# One binary is built and used for everything (the cache key and the
# manifest embed the code version, so mixing binaries would be a false
# failure), then:
#
#   1. `radiobfs run` executes the smoke spec directly → reference bytes.
#   2. `radiobfs serve` starts on an ephemeral port.
#   3. `radiobfs submit` #1 must execute (cacheHit=false) and download
#      artifacts byte-identical to the direct run (`diff -r`).
#   4. `radiobfs submit` #2 must be answered from the cache
#      (cacheHit=true), with the server's execution counter still at 1.
set -euo pipefail

cd "$(dirname "$0")/.."
work="$(mktemp -d /tmp/radiobfs_serve_smoke.XXXXXX)"
bin="$work/radiobfs"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/radiobfs

# 1. Reference run, directly through the CLI executor.
"$bin" run -quick -out "$work/direct" scenarios/smoke.json > /dev/null

# 2. Serve on an ephemeral port; -addrfile tells us where it landed.
"$bin" serve -addr 127.0.0.1:0 -store "$work/store" \
    -addrfile "$work/addr" 2> "$work/serve.log" &
server_pid=$!
for _ in $(seq 1 100); do
    [ -s "$work/addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$work/serve.log"; echo "serve exited early"; exit 1; }
    sleep 0.1
done
[ -s "$work/addr" ] || { echo "serve never wrote $work/addr"; exit 1; }
server="http://$(cat "$work/addr")"

# 3. First submission: must execute, not hit the cache.
"$bin" submit -server "$server" -quick -out "$work/fetched1" -json \
    scenarios/smoke.json > "$work/status1.json"
grep -q '"cacheHit": false' "$work/status1.json" \
    || { echo "first submission unexpectedly hit the cache:"; cat "$work/status1.json"; exit 1; }

# 4. Second submission: must be a cache hit, no re-execution.
"$bin" submit -server "$server" -quick -out "$work/fetched2" -json \
    scenarios/smoke.json > "$work/status2.json"
grep -q '"cacheHit": true' "$work/status2.json" \
    || { echo "second submission was not a cache hit:"; cat "$work/status2.json"; exit 1; }

# The server-side execution counter proves the cache hit skipped the runner.
curl -sf "$server/v1/stats" > "$work/stats.json"
grep -q '"executions": 1' "$work/stats.json" \
    || { echo "expected exactly 1 execution:"; cat "$work/stats.json"; exit 1; }
grep -q '"cacheHits": 1' "$work/stats.json" \
    || { echo "expected exactly 1 cache hit:"; cat "$work/stats.json"; exit 1; }

# Byte-identity: both fetched trees match the direct run exactly.
diff -r "$work/direct" "$work/fetched1"
diff -r "$work/direct" "$work/fetched2"

echo "serve-smoke: cache hit without re-execution, artifacts byte-identical to radiobfs run"
