package repro

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestRegistryCatalog pins the registered surface: every built-in workload
// is resolvable by name and by its documented aliases, listings are sorted,
// and unknown names error with the full catalog.
func TestRegistryCatalog(t *testing.T) {
	want := []string{"alarm", "decay", "diam2", "diam32", "poll", "recursive", "verify"}
	got := AlgorithmNames()
	if len(got) < len(want) {
		t.Fatalf("registry names = %v, want at least %v", got, want)
	}
	for _, name := range want {
		a, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("Get(%q).Name() = %q", name, a.Name())
		}
		if a.Doc() == "" {
			t.Fatalf("%s has no doc line", name)
		}
	}
	for alias, canon := range map[string]string{"recursive-bfs": "recursive", "decay-bfs": "decay", "baseline": "decay"} {
		a, err := Get(alias)
		if err != nil {
			t.Fatalf("Get(%q): %v", alias, err)
		}
		if a.Name() != canon {
			t.Fatalf("alias %q resolved to %q, want %q", alias, a.Name(), canon)
		}
	}
	if _, err := Get("bogus"); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("unknown algorithm error should list the catalog, got %v", err)
	}
	algos := Algorithms()
	for i := 1; i < len(algos); i++ {
		if algos[i-1].Name() >= algos[i].Name() {
			t.Fatalf("Algorithms() not sorted at %d: %q >= %q", i, algos[i-1].Name(), algos[i].Name())
		}
	}
}

// TestRegistryMatchesLegacyMethods proves every registered algorithm's
// output matches the legacy Network method byte for byte on fixed seeds —
// the wrappers delegate to the registry, so any drift in how a wrapper
// translates its arguments into a Request shows up here. The case table must
// cover the whole registry: registering a built-in without adding a row
// fails the test.
func TestRegistryMatchesLegacyMethods(t *testing.T) {
	run := func(name string, g *Graph, seed uint64, req Request) *Result {
		t.Helper()
		alg, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := alg.Run(context.Background(), NewNetwork(g, seed), req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res
	}
	eqLabels := func(name string, got, want []int32) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d labels, want %d", name, len(got), len(want))
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: label[%d] = %d, legacy %d", name, v, got[v], want[v])
			}
		}
	}

	cases := map[string]func(t *testing.T){
		"recursive": func(t *testing.T) {
			g, _ := NewGraph("cycle", 96, 5)
			res := run("recursive", g, 5, Request{})
			legacy, err := NewNetwork(g, 5).BFS(0, 96)
			if err != nil {
				t.Fatal(err)
			}
			eqLabels("recursive", res.Labels, legacy)
		},
		"decay": func(t *testing.T) {
			g, _ := NewGraph("grid", 49, 9)
			res := run("decay", g, 9, Request{})
			eqLabels("decay", res.Labels, NewNetwork(g, 9).BFSBaseline(0, 49))
		},
		"verify": func(t *testing.T) {
			g, _ := NewGraph("path", 40, 11)
			labels := graph.BFS(g, 0)
			labels[20] = 35 // corrupt so violations are nonzero
			res := run("verify", g, 11, Request{Labels: labels, MaxDist: 40})
			legacy := NewNetwork(g, 11).VerifyLabeling(labels, 40)
			if int(res.Values["violations"]) != legacy || legacy == 0 {
				t.Fatalf("verify: registry %v, legacy %d", res.Values["violations"], legacy)
			}
		},
		"diam2": func(t *testing.T) {
			g, _ := NewGraph("path", 60, 13)
			res := run("diam2", g, 13, Request{})
			legacy, err := NewNetwork(g, 13).Diameter2Approx()
			if err != nil {
				t.Fatal(err)
			}
			if res.Estimate != legacy {
				t.Fatalf("diam2: registry %d, legacy %d", res.Estimate, legacy)
			}
		},
		"diam32": func(t *testing.T) {
			g, _ := NewGraph("path", 60, 13)
			res := run("diam32", g, 13, Request{})
			legacy, err := NewNetwork(g, 13).Diameter32Approx()
			if err != nil {
				t.Fatal(err)
			}
			if res.Estimate != legacy {
				t.Fatalf("diam32: registry %d, legacy %d", res.Estimate, legacy)
			}
		},
		"poll": func(t *testing.T) {
			g, _ := NewGraph("grid", 36, 15)
			labels := graph.BFS(g, 0)
			res := run("poll", g, 15, Request{Labels: labels, Period: 4})
			latency, all := NewNetwork(g, 15).Poll(labels, 4)
			if int64(res.Values["latency"]) != latency || (res.Values["delivered"] == 1) != all {
				t.Fatalf("poll: registry (%v, %v), legacy (%d, %v)", res.Values["latency"], res.Values["delivered"], latency, all)
			}
		},
		"alarm": func(t *testing.T) {
			g, _ := NewGraph("grid", 49, 21)
			labels := graph.BFS(g, 0)
			res := run("alarm", g, 21, Request{Labels: labels, Origin: 48, Period: 4})
			latency, ok := NewNetwork(g, 21).Alarm(labels, 48, 4)
			if int64(res.Values["latency"]) != latency || (res.Values["completed"] == 1) != ok {
				t.Fatalf("alarm: registry (%v, %v), legacy (%d, %v)", res.Values["latency"], res.Values["completed"], latency, ok)
			}
		},
	}
	for _, a := range Algorithms() {
		fn, ok := cases[a.Name()]
		if !ok {
			t.Fatalf("registered algorithm %q has no legacy round-trip case", a.Name())
		}
		t.Run(a.Name(), fn)
	}
}

// cancelAfter cancels a context once the named phase has reported the given
// number of round batches.
type cancelAfter struct {
	cancel  context.CancelFunc
	phase   string
	batches int
	seen    int
}

func (c *cancelAfter) PhaseStart(string) {}
func (c *cancelAfter) PhaseEnd(string)   {}
func (c *cancelAfter) RoundBatch(phase string, _ int64) {
	if phase == c.phase {
		if c.seen++; c.seen == c.batches {
			c.cancel()
		}
	}
}

// TestCancelStopsRecursiveBFS: canceling mid-sweep stops Recursive-BFS
// within one phase — the run errors with context.Canceled, the meters have
// moved but strictly less than a full run's, and the partial run is
// deterministic (meters identical across two canceled runs).
func TestCancelStopsRecursiveBFS(t *testing.T) {
	g, _ := NewGraph("cycle", 256, 3)
	p := core.Params{InvBeta: 8, Depth: 1, W: 24, Alpha: 4}
	alg, _ := Get("recursive")

	full := NewNetwork(g, 3, WithParams(p))
	if _, err := alg.Run(context.Background(), full, Request{MaxDist: 128}); err != nil {
		t.Fatal(err)
	}
	fullTime := full.Report().LBTime

	canceled := func() Report {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		nw := NewNetwork(g, 3, WithParams(p))
		obs := &cancelAfter{cancel: cancel, phase: core.PhaseRecursive, batches: 2}
		_, err := alg.Run(ctx, nw, Request{MaxDist: 128, Observer: obs})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run returned %v, want context.Canceled", err)
		}
		return nw.Report()
	}
	rep := canceled()
	if rep.LBTime <= 0 || rep.LBTime >= fullTime {
		t.Fatalf("canceled run LBTime = %d, want in (0, %d)", rep.LBTime, fullTime)
	}
	if again := canceled(); again != rep {
		t.Fatalf("canceled run meters not deterministic: %+v vs %+v", rep, again)
	}
}

// TestCancelStopsDecayBFS: the same property for the Decay baseline, on the
// physical channel so the engine meters are observable through the network.
func TestCancelStopsDecayBFS(t *testing.T) {
	g, _ := NewGraph("cycle", 256, 7)
	alg, _ := Get("decay")

	full := NewNetwork(g, 7, WithCostModel(CostPhysical))
	if _, err := alg.Run(context.Background(), full, Request{}); err != nil {
		t.Fatal(err)
	}
	fullRounds := full.Report().PhysRounds

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nw := NewNetwork(g, 7, WithCostModel(CostPhysical))
	obs := &cancelAfter{cancel: cancel, phase: "decay-bfs", batches: 3}
	if _, err := alg.Run(ctx, nw, Request{Observer: obs}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	rep := nw.Report()
	if rep.PhysRounds <= 0 || rep.PhysRounds >= fullRounds {
		t.Fatalf("canceled run PhysRounds = %d, want in (0, %d)", rep.PhysRounds, fullRounds)
	}
}

// TestPreCanceledContextFailsFast: a context canceled before Run starts
// yields the context error without moving any meters.
func TestPreCanceledContextFailsFast(t *testing.T) {
	g, _ := NewGraph("cycle", 64, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"recursive", "decay", "diam2"} {
		alg, _ := Get(name)
		nw := NewNetwork(g, 1)
		if _, err := alg.Run(ctx, nw, Request{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: pre-canceled context returned %v", name, err)
		}
		if rep := nw.Report(); rep.LBTime != 0 {
			t.Fatalf("%s: meters moved on a pre-canceled run: %+v", name, rep)
		}
	}
}

// TestObserverEvents: phase events are balanced and round batches flow.
func TestObserverEvents(t *testing.T) {
	g, _ := NewGraph("cycle", 96, 5)
	var starts, ends int
	var rounds int64
	obs := ObserverFuncs{
		OnPhaseStart: func(string) { starts++ },
		OnPhaseEnd:   func(string) { ends++ },
		OnRoundBatch: func(_ string, n int64) { rounds += n },
	}
	alg, _ := Get("recursive")
	if _, err := alg.Run(context.Background(), NewNetwork(g, 5), Request{Observer: obs}); err != nil {
		t.Fatal(err)
	}
	if starts == 0 || starts != ends {
		t.Fatalf("unbalanced phases: %d starts, %d ends", starts, ends)
	}
	if rounds <= 0 {
		t.Fatalf("no round batches observed")
	}
}

// TestBaselineCostCarriesPhysicalReport pins the BFSBaseline meter fix: in
// CostUnit mode the baseline's engine is no longer a silently discarded
// throwaway — the registry result carries its physical-energy report.
func TestBaselineCostCarriesPhysicalReport(t *testing.T) {
	g, _ := NewGraph("grid", 49, 9)
	alg, _ := Get("decay")
	res, err := alg.Run(context.Background(), NewNetwork(g, 9), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.MaxPhysEnergy <= 0 || res.Cost.PhysRounds <= 0 {
		t.Fatalf("unit-cost baseline lost its physical report: %+v", res.Cost)
	}
	if res.Cost.MsgViolations != 0 {
		t.Fatalf("baseline violated the message budget: %+v", res.Cost)
	}
}

// TestResultCostIsPerRun: on a network with accumulated meters, a run's
// Cost reports only that run's additive movement, not the cumulative total.
func TestResultCostIsPerRun(t *testing.T) {
	g, _ := NewGraph("cycle", 96, 5)
	nw := NewNetwork(g, 5)
	alg, _ := Get("recursive")
	if _, err := alg.Run(context.Background(), nw, Request{}); err != nil {
		t.Fatal(err)
	}
	mid := nw.Report()
	res, err := alg.Run(context.Background(), nw, Request{})
	if err != nil {
		t.Fatal(err)
	}
	after := nw.Report()
	if res.Cost.LBTime != after.LBTime-mid.LBTime || res.Cost.TotalLBEnergy != after.TotalLBEnergy-mid.TotalLBEnergy {
		t.Fatalf("Cost not per-run: cost %+v, cumulative movement (%d, %d)",
			res.Cost, after.LBTime-mid.LBTime, after.TotalLBEnergy-mid.TotalLBEnergy)
	}
}

// TestNewNetworkEValidation: the error-returning constructor rejects nil
// graphs and invalid options, and NewNetwork panics on the same inputs.
func TestNewNetworkEValidation(t *testing.T) {
	if _, err := NewNetworkE(nil, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
	g, _ := NewGraph("cycle", 32, 1)
	if _, err := NewNetworkE(g, 1, WithDecayPasses(-1)); err == nil {
		t.Fatal("negative Decay pass count accepted")
	}
	if nw, err := NewNetworkE(g, 1, WithDecayPasses(5)); err != nil || nw == nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewNetwork did not panic on invalid options")
			}
		}()
		NewNetwork(g, 1, WithDecayPasses(-1))
	}()
}

// TestRequestValidation: each entry rejects out-of-range fields before
// touching the network.
func TestRequestValidation(t *testing.T) {
	g, _ := NewGraph("cycle", 32, 1)
	bad := []struct {
		algo string
		req  Request
	}{
		{"recursive", Request{Source: -1}},
		{"recursive", Request{Source: 32}},
		{"recursive", Request{MaxDist: -3}},
		{"poll", Request{Period: -2}},
		{"poll", Request{Labels: make([]int32, 7)}},
		{"alarm", Request{Origin: 99}},
		{"verify", Request{Labels: make([]int32, 7)}},
	}
	for _, c := range bad {
		alg, _ := Get(c.algo)
		nw := NewNetwork(g, 1)
		if _, err := alg.Run(context.Background(), nw, c.req); err == nil {
			t.Fatalf("%s accepted invalid request %+v", c.algo, c.req)
		}
		if rep := nw.Report(); rep.LBTime != 0 {
			t.Fatalf("%s moved meters on invalid request: %+v", c.algo, rep)
		}
	}
}
