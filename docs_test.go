package repro

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsHealthPackageComments enforces the documentation contract: every
// Go package in the repository — the root, every internal/ package, the
// scenarios library, commands and examples — carries a godoc package
// comment. CI runs this as the docs-health gate.
func TestDocsHealthPackageComments(t *testing.T) {
	var pkgDirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(pkgDirs) == 0 || pkgDirs[len(pkgDirs)-1] != dir {
				pkgDirs = append(pkgDirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range pkgDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, file := range pkg.Files {
				if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package comment — add a doc.go stating the paper section it implements and its determinism/allocation contracts", name, dir)
			}
		}
	}
}

// TestDocsHealthLinks fails on broken intra-repository links in the
// top-level documentation: every relative markdown link target in README.md
// and DESIGN.md (and the other root documents) must exist.
func TestDocsHealthLinks(t *testing.T) {
	docs := []string{"README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md"}
	// [text](target) with a relative target; external schemes and pure
	// anchors are skipped below.
	link := regexp.MustCompile(`\]\(([^)\s]+)\)`)
	for _, doc := range docs {
		blob, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("missing top-level document: %v", err)
			continue
		}
		for _, m := range link.FindAllStringSubmatch(string(blob), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, m[1])
			}
		}
	}

	// README must link the paper-to-code map.
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), "DESIGN.md") {
		t.Error("README.md does not link DESIGN.md")
	}
}
