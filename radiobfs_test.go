package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestNewGraphFamilies(t *testing.T) {
	g, err := NewGraph("grid", 64, 1)
	if err != nil || g.N() == 0 {
		t.Fatalf("grid: %v", err)
	}
	if _, err := NewGraph("bogus", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestNetworkBFSUnitModel(t *testing.T) {
	g, _ := NewGraph("cycle", 96, 5)
	nw := NewNetwork(g, 5)
	labels, err := nw.BFS(0, 96)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.BFS(g, 0)
	for v := range ref {
		if labels[v] != ref[v] {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], ref[v])
		}
	}
	rep := nw.Report()
	if rep.MaxLBEnergy == 0 || rep.LBTime == 0 {
		t.Fatalf("meters did not move: %+v", rep)
	}
	if rep.MaxPhysEnergy != 0 {
		t.Fatal("unit model reported physical energy")
	}
}

func TestNetworkBFSPhysicalModel(t *testing.T) {
	g, _ := NewGraph("cycle", 48, 7)
	nw := NewNetwork(g, 7, WithCostModel(CostPhysical))
	labels, err := nw.BFS(0, 48)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.BFS(g, 0)
	bad := 0
	for v := range ref {
		if labels[v] != ref[v] {
			bad++
		}
	}
	if bad != 0 {
		t.Fatalf("%d mislabeled on physical channel", bad)
	}
	rep := nw.Report()
	if rep.MaxPhysEnergy == 0 || rep.PhysRounds == 0 {
		t.Fatalf("physical meters did not move: %+v", rep)
	}
	if rep.MsgViolations != 0 {
		t.Fatalf("RN[O(log n)] violations: %d", rep.MsgViolations)
	}
}

func TestNetworkBaselineAgrees(t *testing.T) {
	g, _ := NewGraph("grid", 49, 9)
	nw := NewNetwork(g, 9)
	labels := nw.BFSBaseline(0, 49)
	ref := graph.BFS(g, 0)
	for v := range ref {
		if labels[v] != ref[v] {
			t.Fatalf("baseline label[%d] = %d, want %d", v, labels[v], ref[v])
		}
	}
}

func TestNetworkVerifyLabeling(t *testing.T) {
	g, _ := NewGraph("path", 40, 11)
	nw := NewNetwork(g, 11)
	labels, err := nw.BFS(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if v := nw.VerifyLabeling(labels, 40); v != 0 {
		t.Fatalf("true labels rejected: %d violations", v)
	}
	labels[20] = 35
	if v := nw.VerifyLabeling(labels, 40); v == 0 {
		t.Fatal("corrupted labels accepted")
	}
}

func TestNetworkDiameterApproximations(t *testing.T) {
	g, _ := NewGraph("path", 60, 13)
	nw := NewNetwork(g, 13)
	d2, err := nw.Diameter2Approx()
	if err != nil {
		t.Fatal(err)
	}
	if d2 < 59/2 || d2 > 59 {
		t.Fatalf("2-approx %d outside [29, 59]", d2)
	}
	nw.Reset()
	d32, err := nw.Diameter32Approx()
	if err != nil {
		t.Fatal(err)
	}
	if d32 < 59*2/3 || d32 > 59 {
		t.Fatalf("3/2-approx %d outside [39, 59]", d32)
	}
}

func TestNetworkPoll(t *testing.T) {
	g, _ := NewGraph("grid", 36, 15)
	nw := NewNetwork(g, 15)
	labels, err := nw.BFS(0, 36)
	if err != nil {
		t.Fatal(err)
	}
	latency, all := nw.Poll(labels, 4)
	if !all {
		t.Fatal("polled broadcast incomplete")
	}
	if latency <= 0 {
		t.Fatalf("latency = %d", latency)
	}
}

func TestNetworkReset(t *testing.T) {
	g, _ := NewGraph("cycle", 32, 17)
	nw := NewNetwork(g, 17)
	if _, err := nw.BFS(0, 32); err != nil {
		t.Fatal(err)
	}
	if nw.Report().LBTime == 0 {
		t.Fatal("meters empty after a run")
	}
	nw.Reset()
	if nw.Report().LBTime != 0 {
		t.Fatal("Reset did not clear meters")
	}
}

func TestWithParamsOverride(t *testing.T) {
	g, _ := NewGraph("cycle", 64, 19)
	nw := NewNetwork(g, 19, WithParams(coreParamsForTest()))
	labels, err := nw.BFS(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.BFS(g, 0)
	for v := range ref {
		want := ref[v]
		if want > 32 {
			want = -1
		}
		if labels[v] != want {
			t.Fatalf("label[%d] = %d, want %d", v, labels[v], want)
		}
	}
}

func coreParamsForTest() core.Params {
	return core.Params{InvBeta: 4, Depth: 1, W: 24, Alpha: 4}
}

func TestNetworkAlarm(t *testing.T) {
	g, _ := NewGraph("grid", 49, 21)
	nw := NewNetwork(g, 21)
	labels, err := nw.BFS(0, 49)
	if err != nil {
		t.Fatal(err)
	}
	latency, completed := nw.Alarm(labels, 48, 4)
	if !completed {
		t.Fatal("alarm round trip failed")
	}
	if latency <= 0 {
		t.Fatalf("latency = %d", latency)
	}
	// An unlabeled origin cannot raise an alarm.
	labels2 := append([]int32(nil), labels...)
	labels2[48] = -1
	if _, ok := nw.Alarm(labels2, 48, 4); ok {
		t.Fatal("alarm from unlabeled origin should fail")
	}
}

// TestLog2Ceil pins the ⌈log₂ n⌉ helper, in particular the degenerate
// single-vertex network: log2ceil(1) must be 0, not 1 (2⁰ = 1 >= 1).
func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
	// The Decay-pass default must stay positive even when log2ceil is 0.
	g, err := NewGraph("path", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(g, 1)
	labels, err := nw.BFS(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 0 {
		t.Fatalf("single-vertex label = %d, want 0", labels[0])
	}
}

// TestEndToEndDeterminism: the entire public pipeline — graph generation,
// BFS, verification, diameter estimate, alarm — is a pure function of the
// root seed.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (int64, int32, int64) {
		g, err := NewGraph("geometric", 120, 77)
		if err != nil {
			t.Fatal(err)
		}
		nw := NewNetwork(g, 77)
		labels, err := nw.BFS(0, g.N())
		if err != nil {
			t.Fatal(err)
		}
		d2, err := nw.Diameter2Approx()
		if err != nil {
			t.Fatal(err)
		}
		latency, ok := nw.Alarm(labels, int32(g.N()-1), 4)
		if !ok {
			t.Fatal("alarm failed")
		}
		return nw.Report().MaxLBEnergy, d2, latency
	}
	e1, d1, l1 := run()
	e2, d2, l2 := run()
	if e1 != e2 || d1 != d2 || l1 != l2 {
		t.Fatalf("pipeline not deterministic: (%d,%d,%d) vs (%d,%d,%d)", e1, d1, l1, e2, d2, l2)
	}
}
